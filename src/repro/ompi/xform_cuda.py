"""CUDA transformation set: OpenMP target constructs -> CUDA kernel ASTs.

Two lowering strategies, exactly as the paper describes:

* **combined constructs** (§3.1) — ``target teams distribute parallel
  for`` (written combined or as a directly nested chain) maps teams to the
  CUDA grid and threads to the block; iterations are distributed in two
  phases through the device library (``cudadev_get_distribute_chunk`` then
  ``cudadev_get_{static,dynamic,guided}_chunk``).  No master/worker
  machinery is used at all;
* **master/worker scheme** (§3.2) — any other ``target`` body launches
  with 128 threads, the master warp's thread 0 executing the sequential
  code and worker warps serving standalone ``parallel`` regions through
  registration over barriers B1/B2 and the shared-memory stack.

The generated kernels are plain CUDA C ASTs; the compiler driver unparses
them to standalone kernel files and feeds the *text* back through the
nvcc simulator, reproducing the paper's Fig. 2 pipeline honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cfront import astnodes as A
from repro.cfront.ctypes_ import (
    ArrayType, BasicType, CType, INT, LONG, PointerType, VOID, VOIDP,
)
from repro.cfront.errors import CFrontError
from repro.cfront.unparse import unparse
from repro.openmp.clauses import (
    AtomicClause, DataSharingClause, ExprClause, MapClause, NameClause,
    NowaitClause, ReductionClause, ScheduleClause,
)
from repro.openmp.directives import Directive
from repro.ompi.astutil import (
    addr_of, assign, binop, block, call, callstmt, cast, ceil_div, clone,
    decl, decl_long, deref, ident, intlit, product, rename_idents,
    sizeof_expr, written_names,
)
from repro.ompi.config import OmpiConfig
from repro.ompi.outline import CapturedVar, TargetRegion, collect_identifiers, locally_declared


class CudaXformError(CFrontError):
    pass


_COMBINED_SEQUENCE = ("target", "teams", "distribute", "parallel", "for")


@dataclass
class LoopInfo:
    var: str
    var_type: CType
    lb: A.Expr
    count: A.Expr          # iteration count expression (host names)
    step: int
    body: A.Stmt


@dataclass
class KernelPlan:
    """Everything the host transformation needs to launch this kernel."""

    kernel_name: str
    mode: str                              # 'combined' | 'mw'
    params: list[CapturedVar]
    kernel_unit: A.TranslationUnit
    #: for combined kernels: per-loop iteration-count expressions written in
    #: terms of *host* variable names (evaluated at the launch site)
    host_counts: list[A.Expr] = field(default_factory=list)
    num_teams: Optional[A.Expr] = None
    num_threads: Optional[A.Expr] = None
    thread_limit: Optional[A.Expr] = None
    schedule: tuple[str, Optional[A.Expr]] = ("static", None)
    collapse: int = 1
    #: scalar reductions of the combined construct: (name, op, ctype).
    #: In tree mode the kernel gains one trailing ``__redp_<name>``
    #: pointer parameter per entry (per-team partials buffer) and the
    #: host runtime performs the fixed-order cross-team combine.
    reductions: list[tuple[str, str, CType]] = field(default_factory=list)
    #: 'tree' (deterministic warp-shuffle/shared-memory/copy-back tree)
    #: or 'atomic' (legacy order-dependent global-atomic merge baseline)
    reduction_mode: str = "tree"


def flatten_construct(pragma: A.PragmaStmt) -> tuple[Directive, A.Stmt]:
    """Merge a chain of directly nested target/teams/distribute/parallel/for
    pragmas into one effective combined directive."""
    words: list[str] = []
    clauses = []
    node: A.Stmt = pragma
    while True:
        if isinstance(node, A.Compound) and len(node.body) == 1 \
                and isinstance(node.body[0], A.PragmaStmt) and words:
            node = node.body[0]
        if not (isinstance(node, A.PragmaStmt) and node.directive is not None):
            break
        d: Directive = node.directive
        expected_next = list(_COMBINED_SEQUENCE[len(words):])
        d_words = list(d.words)
        if d_words != expected_next[: len(d_words)]:
            break
        words.extend(d_words)
        clauses.extend(d.clauses)
        if node.body is None:
            raise CudaXformError("construct with no body", node.loc)
        node = node.body
    if not words:
        raise CudaXformError("not a target construct", pragma.loc)
    return Directive(" ".join(words), clauses), node


def analyze_canonical_loop(loop: A.For) -> LoopInfo:
    """Canonical-form analysis: ``for (i = lb; i < ub; i += step)``."""
    if not isinstance(loop, A.For):
        raise CudaXformError("worksharing construct requires a for loop",
                             getattr(loop, "loc", None))
    var: Optional[str] = None
    var_type: CType = INT
    lb: Optional[A.Expr] = None
    if isinstance(loop.init, A.ExprStmt) and isinstance(loop.init.expr, A.Assign) \
            and loop.init.expr.op is None \
            and isinstance(loop.init.expr.target, A.Ident):
        var = loop.init.expr.target.name
        lb = loop.init.expr.value
    elif isinstance(loop.init, A.DeclStmt) and len(loop.init.decls) == 1 \
            and loop.init.decls[0].init is not None:
        var = loop.init.decls[0].name
        var_type = loop.init.decls[0].type
        lb = loop.init.decls[0].init
    if var is None or lb is None:
        raise CudaXformError("loop is not in OpenMP canonical form (init)",
                             loop.loc)
    cond = loop.cond
    if not (isinstance(cond, A.Binary) and cond.op in ("<", "<=")
            and isinstance(cond.left, A.Ident) and cond.left.name == var):
        raise CudaXformError("loop is not in canonical form (condition)", loop.loc)
    step = _const_step(loop.step, var)
    if step is None or step <= 0:
        raise CudaXformError("loop requires a positive constant step", loop.loc)
    ub = cond.right
    if cond.op == "<=":
        ub = binop("+", clone(ub), intlit(1))
    diff = binop("-", clone(ub), clone(lb))
    count = diff if step == 1 else ceil_div(diff, intlit(step))
    return LoopInfo(var, var_type, lb, count, step, loop.body)


def collect_collapsed_loops(body: A.Stmt, d: Directive) -> list[LoopInfo]:
    """Peel ``collapse(n)`` perfectly nested canonical loops off a
    worksharing construct's body (n = 1 when the clause is absent)."""
    collapse = 1
    ccl = d.first(ExprClause, "collapse")
    if ccl is not None:
        if not isinstance(ccl.expr, A.IntLit):
            raise CudaXformError("collapse argument must be a constant")
        collapse = ccl.expr.value
    loops: list[LoopInfo] = []
    node = body
    for level in range(collapse):
        if isinstance(node, A.Compound) and len(node.body) == 1:
            node = node.body[0]
        if not isinstance(node, A.For):
            raise CudaXformError(
                f"collapse({collapse}) requires {collapse} perfectly "
                f"nested loops (found {type(node).__name__} at level {level})"
            )
        info = analyze_canonical_loop(node)
        loops.append(info)
        node = info.body
    return loops


def _const_step(step: Optional[A.Expr], var: str) -> Optional[int]:
    if step is None:
        return None
    if isinstance(step, A.Unary) and step.op in ("++", "p++") \
            and isinstance(step.operand, A.Ident) and step.operand.name == var:
        return 1
    if isinstance(step, A.Assign) and isinstance(step.target, A.Ident) \
            and step.target.name == var:
        if step.op == "+" and isinstance(step.value, A.IntLit):
            return step.value.value
        if step.op is None and isinstance(step.value, A.Binary) \
                and step.value.op == "+" \
                and isinstance(step.value.left, A.Ident) \
                and step.value.left.name == var \
                and isinstance(step.value.right, A.IntLit):
            return step.value.right.value
    return None


class CudaKernelBuilder:
    """Builds the kernel-file AST for one target region."""

    def __init__(
        self,
        region: TargetRegion,
        unit: A.TranslationUnit,
        config: OmpiConfig,
        host_scope: dict[str, CType],
        device_functions: list[A.FuncDef],
    ):
        self.region = region
        self.unit = unit
        self.config = config
        self.host_scope = host_scope
        self.device_functions = device_functions
        self._loop_ids = iter(range(1000))
        self._parallel_count = 0
        self._lock_ids: dict[str, int] = {}
        self._extra_decls: list[A.Node] = []   # thrFuncs, structs

    # ------------------------------------------------------------------ build
    def build(self) -> KernelPlan:
        directive, innermost = flatten_construct(
            A.PragmaStmt(self.region.directive.name, self.region.body,
                         directive=self.region.directive)
        )
        if directive.name == " ".join(_COMBINED_SEQUENCE) and \
                isinstance(innermost, A.For):
            return self._build_combined(directive, innermost)
        return self._build_masterworker()

    # -- shared helpers ------------------------------------------------------
    def _param_decls(self) -> list[A.Param]:
        params: list[A.Param] = []
        for cv in self.region.captured:
            if cv.is_pointerish:
                params.append(A.Param(cv.name, PointerType(cv.elem_type())))
            elif cv.by_value:
                params.append(A.Param(cv.name, cv.ctype))
            else:
                params.append(A.Param(cv.name + "_p", PointerType(cv.ctype)))
        return params

    def _scalar_prologue(self, body_writes: set[str]) -> tuple[list[A.Stmt], dict[str, A.Expr]]:
        """Load read-only mapped scalars into locals; rewrite written ones
        through their pointer parameter.  By-value scalars are already
        kernel parameters under their own names."""
        stmts: list[A.Stmt] = []
        renames: dict[str, A.Expr] = {}
        for cv in self.region.captured:
            if cv.is_pointerish or cv.by_value or cv.lastprivate:
                continue
            if cv.name in body_writes:
                renames[cv.name] = deref(ident(cv.name + "_p"))
            else:
                stmts.append(decl(cv.name, cv.ctype,
                                  deref(ident(cv.name + "_p"))))
        return stmts, renames

    def _private_decls(self, body: A.Stmt, skip: set[str]) -> list[A.Stmt]:
        """Declarations for private (unmapped, non-local) names the body
        uses — loop indices of inner loops, private-clause variables."""
        used = collect_identifiers(body)
        local = locally_declared(body)
        captured = {cv.name for cv in self.region.captured}
        out: list[A.Stmt] = []
        for name in sorted(used):
            if name in local or name in captured or name in skip:
                continue
            if name in self.region.device_globals:
                continue
            ctype = self.host_scope.get(name)
            if ctype is None or not isinstance(ctype, BasicType):
                continue
            out.append(decl(name, ctype))
        return out

    def _finish_unit(self, kernel_fn: A.FuncDef) -> A.TranslationUnit:
        unit = A.TranslationUnit(filename=self.region.kernel_name + ".cu")
        for fn in self.device_functions:
            fn_copy = clone(fn)
            if "__device__" not in fn_copy.quals:
                fn_copy.quals = ("__device__",) + fn_copy.quals
            unit.decls.append(fn_copy)
        unit.decls.extend(self._extra_decls)
        unit.decls.append(kernel_fn)
        return unit

    # -- combined construct (paper §3.1) --------------------------------------
    def _build_combined(self, directive: Directive, loop: A.For) -> KernelPlan:
        loops = collect_collapsed_loops(loop, directive)
        body = loops[-1].body

        body_writes = written_names(body)
        prologue, renames = self._scalar_prologue(body_writes)
        # reductions: per-thread accumulator, then either the deterministic
        # warp-shuffle + shared-memory tree (partials to __redp_<name>,
        # combined in fixed team order by the host at copy-back) or the
        # legacy order-dependent global-atomic merge (baseline mode)
        red_mode = getattr(self.config, "reduction_mode", "tree") or "tree"
        red_epilogue: list[A.Stmt] = []
        reds: list[tuple[str, str, CapturedVar]] = []
        for red in directive.clauses_of(ReductionClause):
            for name in red.names:
                cv = next((c for c in self.region.captured if c.name == name), None)
                if cv is None or cv.is_pointerish:
                    raise CudaXformError(
                        f"reduction variable {name!r} must be a mapped scalar")
                acc = "__red_" + name
                prologue.append(decl(acc, cv.ctype,
                                     _red_identity(red.op, cv)))
                renames[name] = ident(acc)
                reds.append((name, red.op, cv))
        if reds:
            if red_mode == "atomic":
                red_epilogue = [_atomic_merge(name, op, cv)
                                for name, op, cv in reds]
            else:
                red_epilogue = [_tree_epilogue(reds)]

        # iteration-space linearisation
        kernel_counts: list[A.Expr] = []
        for i, info in enumerate(loops):
            count = rename_idents(info.count, renames)
            prologue.append(decl_long(f"__n{i}", cast(LONG, count)))
            kernel_counts.append(ident(f"__n{i}"))
        niter = product([ident(f"__n{i}") for i in range(len(loops))])

        # index reconstruction from the linear iteration number __it
        recon: list[A.Stmt] = []
        for i, info in enumerate(loops):
            expr: A.Expr = ident("__it")
            for j in range(i + 1, len(loops)):
                expr = binop("/", expr, ident(f"__n{j}"))
            if i > 0:
                expr = binop("%", expr, ident(f"__n{i}"))
            if info.step != 1:
                expr = binop("*", expr, intlit(info.step))
            expr = binop("+", cast(info.var_type, expr),
                         rename_idents(info.lb, renames))
            recon.append(decl(info.var, info.var_type, expr))
        # per-dimension reconstruction (2D/3D scheme): var = lb + it*step
        recon_dim: list[A.Stmt] = []
        for i, info in enumerate(loops):
            expr = ident(f"__it{i}")
            if info.step != 1:
                expr = binop("*", expr, intlit(info.step))
            expr = binop("+", cast(info.var_type, expr),
                         rename_idents(info.lb, renames))
            recon_dim.append(decl(info.var, info.var_type, expr))

        schedule = ("static", None)
        scl = directive.first(ScheduleClause)
        chunk_expr: A.Expr = intlit(0)
        sched_fn = "cudadev_get_static_chunk"
        if scl is not None:
            schedule = (scl.schedule, scl.chunk)
            if scl.schedule == "dynamic":
                sched_fn = "cudadev_get_dynamic_chunk"
            elif scl.schedule == "guided":
                sched_fn = "cudadev_get_guided_chunk"
            elif scl.schedule in ("auto", "runtime"):
                sched_fn = "cudadev_get_static_chunk"
            if scl.chunk is not None:
                chunk_expr = rename_idents(scl.chunk, renames)

        new_body = rename_idents(body, renames)
        # inner synchronisation constructs (atomic/critical/barrier) still
        # present in the loop body are lowered by the region transformer
        new_body = _RegionTransformer(self, {}).transform_stmt(new_body)
        # lastprivate: private local + conditional write-back from the
        # logically-last iteration of the collapsed nest
        last_cvs = [cv for cv in self.region.captured if cv.lastprivate]
        if last_cvs:
            last_cond: Optional[A.Expr] = None
            for i, info in enumerate(loops):
                term = binop("==", ident(info.var), binop(
                    "-", binop("+", rename_idents(info.lb, renames),
                               binop("*", ident(f"__n{i}"),
                                     intlit(info.step))),
                    intlit(info.step)))
                last_cond = term if last_cond is None else \
                    binop("&&", last_cond, term)
            writes = [assign(deref(ident(cv.name + "_p")), ident(cv.name))
                      for cv in last_cvs]
            for cv in last_cvs:
                prologue.append(decl(cv.name, cv.ctype))
            new_body = block(new_body, A.If(last_cond, block(writes)))

        # 1D loops use the linear scheme (linear thread id over the whole
        # block, matching the linearised indexing of 1D CUDA kernels); 2D/3D
        # collapsed nests use per-dimension chunking so the thread->iteration
        # mapping equals the CUDA grid's.
        use_dims = schedule[0] == "static" and 2 <= len(loops) <= 3
        if use_dims:
            # OMPi's 2D/3D mapping (§5: "Internally, ompi maps these values
            # to two dimensions, so as to match the block and grid
            # dimensions of the equivalent cuda applications"): every
            # collapsed loop dimension distributes along one grid/block
            # dimension — x for the innermost, y/z outwards — through
            # dimension-wise two-phase chunking.
            ndims = len(loops)
            decls: list[A.Stmt] = []
            nest: A.Stmt = new_body
            for level in range(ndims - 1, -1, -1):
                info = loops[level]
                dim = ndims - 1 - level
                loop_id = next(self._loop_ids)
                sfx = str(level)
                decls.extend([
                    decl_long("__lo" + sfx), decl_long("__hi" + sfx),
                    decl_long("__tlo" + sfx), decl_long("__thi" + sfx),
                    decl_long("__it" + sfx),
                ])
                chunk_arg = chunk_expr if level == ndims - 1 else intlit(0)
                inner_for = A.For(
                    A.ExprStmt(A.Assign(ident("__it" + sfx), ident("__tlo" + sfx))),
                    binop("<", ident("__it" + sfx), ident("__thi" + sfx)),
                    A.Assign(ident("__it" + sfx), intlit(1), "+"),
                    block(recon_dim[level], nest),
                )
                nest = block(
                    callstmt("cudadev_get_distribute_chunk_dim", intlit(dim),
                             intlit(0), ident(f"__n{level}"),
                             addr_of(ident("__lo" + sfx)),
                             addr_of(ident("__hi" + sfx))),
                    A.While(
                        call("cudadev_get_static_chunk_dim", intlit(dim),
                             intlit(loop_id), ident("__lo" + sfx),
                             ident("__hi" + sfx), cast(LONG, clone(chunk_arg)),
                             addr_of(ident("__tlo" + sfx)),
                             addr_of(ident("__thi" + sfx))),
                        block([inner_for]),
                    ),
                )
            kernel_body = block(
                callstmt("cudadev_target_init", intlit(0)),
                prologue,
                self._private_decls(body, {info.var for info in loops}),
                decls,
                nest,
                red_epilogue,
            )
        else:
            # linear scheme over the collapsed iteration space (dynamic and
            # guided schedules need the shared team-wide counter)
            loop_id = next(self._loop_ids)
            inner_for = A.For(
                A.ExprStmt(A.Assign(ident("__it"), ident("__tlo"))),
                binop("<", ident("__it"), ident("__thi")),
                A.Assign(ident("__it"), intlit(1), "+"),
                block(recon, new_body),
            )
            while_loop = A.While(
                call(sched_fn, intlit(loop_id), ident("__lo"), ident("__hi"),
                     cast(LONG, chunk_expr), addr_of(ident("__tlo")),
                     addr_of(ident("__thi"))),
                block([inner_for]),
            )
            kernel_body = block(
                callstmt("cudadev_target_init", intlit(0)),
                prologue,
                self._private_decls(body, {info.var for info in loops}),
                decl_long("__niter", niter),
                decl_long("__lo"), decl_long("__hi"),
                decl_long("__tlo"), decl_long("__thi"), decl_long("__it"),
                callstmt("cudadev_get_distribute_chunk", intlit(0),
                         ident("__niter"), addr_of(ident("__lo")),
                         addr_of(ident("__hi"))),
                while_loop,
                red_epilogue,
            )
        params = self._param_decls()
        if reds and red_mode != "atomic":
            # per-team partials buffers ride as trailing pointer params so
            # the positional host kernel arguments stay aligned
            params.extend(A.Param("__redp_" + name, PointerType(cv.ctype))
                          for name, op, cv in reds)
        kernel_fn = A.FuncDef(self.region.kernel_name, VOID,
                              params, kernel_body,
                              ("__global__",))
        plan = KernelPlan(
            kernel_name=self.region.kernel_name,
            mode="combined",
            params=list(self.region.captured),
            kernel_unit=self._finish_unit(kernel_fn),
            host_counts=[clone(info.count) for info in loops],
            schedule=schedule,
            collapse=len(loops),
            reductions=[(name, op, cv.ctype) for name, op, cv in reds],
            reduction_mode=red_mode,
        )
        tc = directive.first(ExprClause, "num_teams")
        plan.num_teams = clone(tc.expr) if tc else None
        th = directive.first(ExprClause, "num_threads")
        plan.num_threads = clone(th.expr) if th else None
        tl = directive.first(ExprClause, "thread_limit")
        plan.thread_limit = clone(tl.expr) if tl else None
        return plan

    # -- master/worker scheme (paper §3.2) --------------------------------------
    def _build_masterworker(self) -> KernelPlan:
        # master/worker kernels keep the paper's Fig. 3b pointer convention
        # for every mapped variable (scalars reach parallel regions through
        # the shared-memory stack, which needs addressable master copies)
        for cv in self.region.captured:
            cv.by_value = False
        body_writes = written_names(self.region.body)
        prologue, renames = self._scalar_prologue(body_writes)
        transformer = _MwTransformer(self, renames)
        seq_body = transformer.transform_stmt(self.region.body)
        kernel_body = block(
            decl("_mw_thrid", INT, binop(
                "+", A.Member(ident("threadIdx"), "x"),
                binop("*", A.Member(ident("threadIdx"), "y"),
                      A.Member(ident("blockDim"), "x")))),
            callstmt("cudadev_target_init", intlit(1)),
            A.If(
                call("cudadev_in_masterwarp", ident("_mw_thrid")),
                block(
                    A.If(A.Unary("!", call("cudadev_is_masterthr",
                                           ident("_mw_thrid"))),
                         A.Return(None)),
                    prologue,
                    self._private_decls(self.region.body, set()),
                    seq_body,
                    callstmt("cudadev_exit_target"),
                ),
                block(callstmt("cudadev_workerfunc", ident("_mw_thrid"))),
            ),
        )
        kernel_fn = A.FuncDef(self.region.kernel_name, VOID,
                              self._param_decls(), kernel_body,
                              ("__global__",))
        return KernelPlan(
            kernel_name=self.region.kernel_name,
            mode="mw",
            params=list(self.region.captured),
            kernel_unit=self._finish_unit(kernel_fn),
        )

    # -- scope helpers ------------------------------------------------------------
    def target_local_types(self) -> dict[str, CType]:
        """Types of variables declared inside the target body (master
        locals), which parallel regions may capture."""
        cache = getattr(self, "_tlt_cache", None)
        if cache is None:
            cache = {n.name: n.type for n in self.region.body.walk()
                     if isinstance(n, A.VarDecl)}
            self._tlt_cache = cache
        return cache

    def lookup_type(self, name: str) -> Optional[CType]:
        cv = next((c for c in self.region.captured if c.name == name), None)
        if cv is not None:
            return cv.ctype
        tlt = self.target_local_types()
        if name in tlt:
            return tlt[name]
        return self.host_scope.get(name)

    # -- lock ids ---------------------------------------------------------------
    def lock_id(self, name: str) -> int:
        if name not in self._lock_ids:
            self._lock_ids[name] = len(self._lock_ids)
        return self._lock_ids[name]


#: operators whose combine is idempotent (x OP x == x): the per-thread
#: accumulator can seed from the incoming value of the reduction variable
#: (folding it any number of times is harmless), sidestepping awkward
#: type-extremum identity literals for max/min
_IDEMPOTENT_RED_OPS = frozenset({"max", "min", "&", "|"})


def _red_identity(op: str, cv: CapturedVar) -> A.Expr:
    """Accumulator initialiser for one reduction variable.

    ``-`` accumulates like ``+`` (the body subtracts, so the accumulator
    collects the negated partial sum and merges additively, per OpenMP)."""
    if op in _IDEMPOTENT_RED_OPS:
        return deref(ident(cv.name + "_p"))
    single = isinstance(cv.ctype, BasicType) and cv.ctype.kind == "float"
    seed = 1.0 if op == "*" else 0.0
    if cv.ctype.is_floating:
        return A.FloatLit(seed, single=single)
    return intlit(int(seed))


def _red_combine(op: str, a: A.Expr, b: A.Expr) -> A.Expr:
    """``a OP b`` as a C expression (max/min as ternaries)."""
    if op in ("+", "-"):
        return binop("+", a, b)
    if op == "max":
        return A.Cond(binop(">", clone(a), clone(b)), a, b)
    if op == "min":
        return A.Cond(binop("<", clone(a), clone(b)), a, b)
    return binop(op, a, b)   # * & | ^


def _atomic_merge(name: str, op: str, cv: CapturedVar) -> A.Stmt:
    """Legacy atomic-merge baseline: each thread merges its accumulator
    straight into the mapped scalar.  Order-dependent for floats, kept
    behind ``OmpiConfig.reduction_mode='atomic'`` as the benchmark
    baseline.  Float max/min and the op/type pairs CUDA has no hardware
    atomic for route through the type-generic ``cudadev_atomic_red_*``
    intrinsics — never an invalid float ``atomicMax``/``atomicMin``."""
    target_ptr = ident(cv.name + "_p")
    acc = ident("__red_" + name)
    if op in ("+", "-"):
        return callstmt("atomicAdd", target_ptr, acc)
    if op in ("max", "min") and not cv.ctype.is_floating:
        return callstmt("atomicMax" if op == "max" else "atomicMin",
                        target_ptr, acc)
    fn = {"max": "max", "min": "min", "*": "mul",
          "&": "and", "|": "or", "^": "xor"}[op]
    return callstmt("cudadev_atomic_red_" + fn, target_ptr, acc)


#: ops the atomic directive can update with (the ones the sim has an
#: atomic RMW for); `+ * & | ^` are commutative so `x = e op x` is legal
_ATOMIC_UPDATE_OPS = ("+", "-", "*", "&", "|", "^")
_ATOMIC_COMMUTATIVE = ("+", "*", "&", "|", "^")


def _match_atomic_update(stmt: A.Stmt) -> Optional[tuple[A.Expr, str, A.Expr]]:
    """Recognise the update forms of ``#pragma omp atomic``:
    ``x op= e``, ``x++``/``x--`` (pre or post), ``x = x op e`` and — for
    commutative ops — ``x = e op x``.  Returns ``(target, op, value)``
    or None."""
    if not isinstance(stmt, A.ExprStmt):
        return None
    expr = stmt.expr
    if isinstance(expr, A.Unary) and expr.op in ("++", "--", "p++", "p--"):
        return (expr.operand, "+" if "++" in expr.op else "-", intlit(1))
    if not isinstance(expr, A.Assign):
        return None
    if expr.op in _ATOMIC_UPDATE_OPS:
        return (expr.target, expr.op, expr.value)
    if expr.op is None and isinstance(expr.value, A.Binary) \
            and expr.value.op in _ATOMIC_UPDATE_OPS:
        target_src = unparse(expr.target)
        if unparse(expr.value.left) == target_src:
            return (expr.target, expr.value.op, expr.value.right)
        if expr.value.op in _ATOMIC_COMMUTATIVE \
                and unparse(expr.value.right) == target_src:
            return (expr.target, expr.value.op, expr.value.left)
    return None


def _atomic_update_call(op: str, target: A.Expr, value: A.Expr) -> A.Expr:
    """The atomic RMW call for one update: ``atomicAdd`` where CUDA has
    one, the type-generic ``cudadev_atomic_red_*`` otherwise.  The call
    returns the old value, which ``atomic capture`` consumes."""
    if op == "-":
        return call("atomicAdd", addr_of(target), A.Unary("-", value))
    if op == "+":
        return call("atomicAdd", addr_of(target), value)
    fn = {"*": "mul", "&": "and", "|": "or", "^": "xor"}[op]
    return call("cudadev_atomic_red_" + fn, addr_of(target), value)


def _tree_epilogue(reds: list[tuple[str, str, CapturedVar]]) -> A.Stmt:
    """Deterministic in-team reduction tree, appended after the
    worksharing loops (every thread reaches it unconditionally, so the
    ``__syncthreads`` inside is uniform).

    Phase 1 combines within each warp by ``__shfl_down_sync`` halving,
    guarded so partial warps never read lanes past the block's thread
    count; phase 2 stores warp totals to a shared workspace and thread 0
    folds them in warp order; the team total lands in this team's slot
    of the ``__redp_<name>`` partials buffer, indexed by the *global*
    team id (shards launch with global grid dims, so slots never
    collide across devices).  The cross-team fold happens host-side in
    fixed team order — the whole combine is order-deterministic."""
    tix = ident("threadIdx")
    bdim = ident("blockDim")
    lin = binop("+", A.Member(clone(tix), "x"),
                binop("*", A.Member(clone(bdim), "x"),
                      binop("+", A.Member(clone(tix), "y"),
                            binop("*", A.Member(clone(bdim), "y"),
                                  A.Member(clone(tix), "z")))))
    nth = binop("*", A.Member(clone(bdim), "x"),
                binop("*", A.Member(clone(bdim), "y"),
                      A.Member(clone(bdim), "z")))
    team = binop("+", A.Member(ident("blockIdx"), "x"),
                 binop("*", A.Member(ident("gridDim"), "x"),
                       binop("+", A.Member(ident("blockIdx"), "y"),
                             binop("*", A.Member(ident("gridDim"), "y"),
                                   A.Member(ident("blockIdx"), "z")))))
    stmts: list[A.Stmt] = [
        decl("__red_lin", INT, lin),
        decl("__red_lane", INT, binop("%", ident("__red_lin"), intlit(32))),
        decl("__red_wid", INT, binop("/", ident("__red_lin"), intlit(32))),
        decl("__red_nth", INT, nth),
        decl("__red_team", INT, team),
        # active lanes of this thread's warp (the last warp may be partial)
        decl("__red_wact", INT,
             A.Cond(binop(">", binop("-", ident("__red_nth"),
                                     binop("*", ident("__red_wid"),
                                           intlit(32))),
                    intlit(32)),
                    intlit(32),
                    binop("-", ident("__red_nth"),
                          binop("*", ident("__red_wid"), intlit(32))))),
        decl("__red_nw", INT,
             binop("/", binop("+", ident("__red_nth"), intlit(31)),
                   intlit(32))),
    ]
    for name, op, cv in reds:
        acc = "__red_" + name
        ws = "__red_ws_" + name
        tmp = "__red_t_" + name
        # warp tree: halve the stride, each step pulling the partner
        # lane's value; the guard keeps lanes past the active count (and
        # their lazily-zero registers) out of the combine
        shuffle_loop = A.For(
            A.ExprStmt(A.Assign(ident("__red_off"), intlit(16))),
            binop(">", ident("__red_off"), intlit(0)),
            A.Assign(ident("__red_off"),
                     binop("/", ident("__red_off"), intlit(2))),
            block(
                decl(tmp, cv.ctype,
                     call("__shfl_down_sync", intlit(-1), ident(acc),
                          ident("__red_off"))),
                A.If(binop("<", binop("+", ident("__red_lane"),
                                      ident("__red_off")),
                           ident("__red_wact")),
                     A.ExprStmt(A.Assign(
                         ident(acc),
                         _red_combine(op, ident(acc), ident(tmp))))),
            ),
        )
        # fold the warp totals in warp order, store this team's partial
        fold = block(
            decl("__red_a", cv.ctype,
                 A.Index(ident(ws), intlit(0))),
            decl("__red_w", INT),
            A.For(
                A.ExprStmt(A.Assign(ident("__red_w"), intlit(1))),
                binop("<", ident("__red_w"), ident("__red_nw")),
                A.Assign(ident("__red_w"), intlit(1), "+"),
                A.ExprStmt(A.Assign(
                    ident("__red_a"),
                    _red_combine(op, ident("__red_a"),
                                 A.Index(ident(ws), ident("__red_w"))))),
            ),
            A.ExprStmt(A.Assign(
                A.Index(ident("__redp_" + name), ident("__red_team")),
                ident("__red_a"))),
        )
        stmts.append(block(
            A.DeclStmt([A.VarDecl(ws, ArrayType(cv.ctype, 32), None, None,
                                  ("__shared__",))]),
            decl("__red_off", INT),
            shuffle_loop,
            A.If(binop("==", ident("__red_lane"), intlit(0)),
                 A.ExprStmt(A.Assign(A.Index(ident(ws), ident("__red_wid")),
                                     ident(acc)))),
            callstmt("__syncthreads"),
            A.If(binop("==", ident("__red_lin"), intlit(0)), fold),
        ))
    return block(stmts)


class _MwTransformer:
    """Rewrites a target body for master-thread execution, outlining
    parallel regions (paper Fig. 3)."""

    def __init__(self, builder: CudaKernelBuilder, scalar_renames: dict[str, A.Expr]):
        self.b = builder
        self.scalar_renames = scalar_renames

    # sequential (master) context ------------------------------------------------
    def transform_stmt(self, stmt: A.Stmt) -> A.Stmt:
        if isinstance(stmt, A.Compound):
            return A.Compound([self.transform_stmt(s) for s in stmt.body])
        if isinstance(stmt, A.PragmaStmt):
            return self._transform_pragma(stmt)
        if isinstance(stmt, A.If):
            return A.If(rename_idents(stmt.cond, self.scalar_renames),
                        self.transform_stmt(stmt.then),
                        self.transform_stmt(stmt.other) if stmt.other else None)
        if isinstance(stmt, A.While):
            return A.While(rename_idents(stmt.cond, self.scalar_renames),
                           self.transform_stmt(stmt.body))
        if isinstance(stmt, A.For):
            return A.For(
                rename_idents(stmt.init, self.scalar_renames) if stmt.init else None,
                rename_idents(stmt.cond, self.scalar_renames) if stmt.cond else None,
                rename_idents(stmt.step, self.scalar_renames) if stmt.step else None,
                self.transform_stmt(stmt.body),
            )
        return rename_idents(stmt, self.scalar_renames)

    def _transform_pragma(self, stmt: A.PragmaStmt) -> A.Stmt:
        d: Directive = stmt.directive
        if d is None:
            return A.ExprStmt(None)
        if d.name in ("parallel", "parallel for", "parallel sections"):
            return self._outline_parallel(stmt, d)
        if d.name == "for":
            # worksharing in the sequential part: a team of one — plain loop
            return self.transform_stmt(stmt.body)
        if d.name in ("single", "master"):
            return self.transform_stmt(stmt.body)
        if d.name == "barrier":
            return A.ExprStmt(None)   # team of one
        if d.name == "critical":
            return self.transform_stmt(stmt.body)
        raise CudaXformError(
            f"'#pragma omp {d.name}' is not supported in the sequential part "
            "of a target region", stmt.loc
        )

    # parallel-region outlining -----------------------------------------------------
    def _outline_parallel(self, stmt: A.PragmaStmt, d: Directive) -> A.Stmt:
        b = self.b
        idx = b._parallel_count
        b._parallel_count += 1
        fn_name = f"thrFunc{idx}"
        struct_name = f"vars_st{idx}"
        region_body = stmt.body
        if d.name == "parallel for":
            region_body = A.PragmaStmt("omp for", stmt.body,
                                       directive=Directive("for", [
                                           c for c in d.clauses
                                           if isinstance(c, (ScheduleClause,
                                                             NowaitClause))
                                       ]))
        if d.name == "parallel sections":
            region_body = A.PragmaStmt("omp sections", stmt.body,
                                       directive=Directive("sections", []))

        from repro.ompi.outline import sequential_loop_vars
        private: set[str] = sequential_loop_vars(stmt.body)
        firstprivate: set[str] = set()
        for clause in d.clauses_of(DataSharingClause):
            if clause.kind == "private":
                private.update(clause.names)
            elif clause.kind == "firstprivate":
                firstprivate.update(clause.names)
        used = collect_identifiers(stmt.body)
        local = locally_declared(stmt.body)
        if d.includes("for"):
            loop = stmt.body
            if isinstance(loop, A.For):
                var = loop.init.decls[0].name if isinstance(loop.init, A.DeclStmt) \
                    else (loop.init.expr.target.name
                          if isinstance(loop.init, A.ExprStmt)
                          and isinstance(loop.init.expr, A.Assign)
                          and isinstance(loop.init.expr.target, A.Ident) else None)
                if var:
                    private.add(var)

        captured_params: list[CapturedVar] = []   # kernel params (arrays)
        captured_scalars: list[tuple[str, CType]] = []  # master locals/scalars
        for name in sorted(used):
            if name in local or name in private:
                continue
            cv = next((c for c in b.region.captured if c.name == name), None)
            if cv is not None:
                if cv.is_pointerish:
                    captured_params.append(cv)
                else:
                    captured_scalars.append((name, cv.ctype))
                continue
            ctype = b.target_local_types().get(name)
            if ctype is not None and isinstance(ctype, BasicType):
                # a master local declared in the target body
                captured_scalars.append((name, ctype))
        # build the vars struct
        fields: list[tuple[str, CType]] = []
        for cv in captured_params:
            fields.append((cv.name, PointerType(cv.elem_type())))
        for name, ctype in captured_scalars:
            fields.append((name, PointerType(ctype)))
        from repro.cfront.ctypes_ import StructType
        stype = StructType(struct_name, tuple(fields))
        b._extra_decls.append(A.StructDef(struct_name, list(fields)))

        # registration block (paper Fig. 3b)
        reg: list[A.Stmt] = []
        reg.append(A.DeclStmt([A.VarDecl("vars", stype, None, None,
                                         ("__shared__",))]))
        for cv in captured_params:
            reg.append(assign(
                A.Member(ident("vars"), cv.name),
                cast(PointerType(cv.elem_type()),
                     call("cudadev_getaddr", cast(VOIDP, ident(cv.name)))),
            ))
        for name, ctype in captured_scalars:
            src = self.scalar_renames.get(name)
            src_addr = addr_of(clone(src.operand)) if isinstance(src, A.Unary) \
                and src.op == "*" else addr_of(ident(name))
            reg.append(assign(
                A.Member(ident("vars"), name),
                cast(PointerType(ctype),
                     call("cudadev_push_shmem", cast(VOIDP, src_addr),
                          sizeof_expr(ident(name)
                                      if src is None else clone(src)))),
            ))
        nthr = d.first(ExprClause, "num_threads")
        nthr_expr = rename_idents(nthr.expr, self.scalar_renames) if nthr \
            else intlit(-1)
        reg.append(callstmt("cudadev_register_parallel", ident(fn_name),
                            cast(VOIDP, addr_of(ident("vars"))), nthr_expr))
        for name, ctype in reversed(captured_scalars):
            src = self.scalar_renames.get(name)
            src_addr = addr_of(clone(src.operand)) if isinstance(src, A.Unary) \
                and src.op == "*" else addr_of(ident(name))
            reg.append(callstmt("cudadev_pop_shmem", cast(VOIDP, src_addr),
                                sizeof_expr(ident(name)
                                            if src is None else clone(src))))

        # thrFunc body
        thr_prologue: list[A.Stmt] = [
            decl("vars", PointerType(stype),
                 cast(PointerType(stype), ident("__arg"))),
        ]
        renames: dict[str, A.Expr] = {}
        for cv in captured_params:
            thr_prologue.append(decl(cv.name, PointerType(cv.elem_type()),
                                     A.Member(ident("vars"), cv.name,
                                              arrow=True)))
        for name, ctype in captured_scalars:
            if name in firstprivate:
                thr_prologue.append(decl(name, ctype,
                                         deref(A.Member(ident("vars"), name,
                                                        arrow=True))))
            else:
                renames[name] = deref(A.Member(ident("vars"), name, arrow=True))
        for name in sorted(private - local):
            ctype = b.lookup_type(name)
            if ctype is not None and isinstance(ctype, BasicType):
                thr_prologue.append(decl(name, ctype))

        region_xf = _RegionTransformer(b, renames)
        thr_body = block(thr_prologue,
                         region_xf.transform_stmt(region_body))
        thr_fn = A.FuncDef(fn_name, VOID,
                           [A.Param("__arg", VOIDP)], thr_body,
                           ("__device__",))
        b._extra_decls.append(thr_fn)
        return A.Compound(reg)


def _declared_in(stmt: A.Stmt, name: str) -> bool:
    return any(isinstance(n, A.VarDecl) and n.name == name for n in stmt.walk())


class _RegionTransformer:
    """Rewrites a parallel-region body for worker-thread execution."""

    def __init__(self, builder: CudaKernelBuilder, renames: dict[str, A.Expr]):
        self.b = builder
        self.renames = renames

    def transform_stmt(self, stmt: A.Stmt) -> A.Stmt:
        if isinstance(stmt, A.Compound):
            return A.Compound([self.transform_stmt(s) for s in stmt.body])
        if isinstance(stmt, A.PragmaStmt):
            return self._transform_pragma(stmt)
        if isinstance(stmt, (A.If, A.While, A.For, A.DoWhile)):
            out = clone(stmt)
            # rename, then recurse into sub-statements
            out = rename_idents(out, self.renames)
            self._recurse_pragmas(out)
            return out
        return rename_idents(stmt, self.renames)

    def _recurse_pragmas(self, node: A.Node) -> None:
        import dataclasses
        for f in dataclasses.fields(node):
            value = getattr(node, f.name)
            if isinstance(value, A.PragmaStmt):
                setattr(node, f.name, self._transform_pragma(value,
                                                             prerenamed=True))
            elif isinstance(value, A.Node):
                self._recurse_pragmas(value)
            elif isinstance(value, list):
                for i, item in enumerate(value):
                    if isinstance(item, A.PragmaStmt):
                        value[i] = self._transform_pragma(item, prerenamed=True)
                    elif isinstance(item, A.Node):
                        self._recurse_pragmas(item)

    def _transform_pragma(self, stmt: A.PragmaStmt, prerenamed: bool = False) -> A.Stmt:
        from repro.openmp.pragma_parser import parse_omp_pragma
        d: Directive = stmt.directive
        if d is None:
            d = parse_omp_pragma(stmt.text)
        rn = {} if prerenamed else self.renames
        if d.name in ("for", "for simd"):
            return self._worksharing_for(stmt, d, rn)
        if d.name == "simd":
            # warps already execute in lockstep; simd is a no-op hint here
            return self.transform_stmt(rename_idents(stmt.body, rn))
        if d.name == "barrier":
            return callstmt("cudadev_barrier")
        if d.name == "critical":
            return self._critical(stmt, d, rn)
        if d.name in ("single", "master"):
            body = self.transform_stmt(rename_idents(stmt.body, rn))
            guarded = A.If(binop("==", call("omp_get_thread_num"), intlit(0)),
                           body)
            if d.name == "single" and not d.has(NowaitClause):
                return block(guarded, callstmt("cudadev_barrier"))
            return guarded
        if d.name == "sections":
            return self._sections(stmt, d, rn)
        if d.name == "atomic":
            return self._atomic(stmt, d, rn)
        if d.name == "parallel":
            raise CudaXformError(
                "nested parallel regions inside a device parallel region "
                "are not supported", stmt.loc
            )
        raise CudaXformError(
            f"'#pragma omp {d.name}' inside a device parallel region is "
            "not supported", stmt.loc
        )

    def _worksharing_for(self, stmt: A.PragmaStmt, d: Directive,
                         rn: dict[str, A.Expr]) -> A.Stmt:
        # collapse(n) folds n perfectly nested canonical loops into the
        # same linearised iteration space the combined construct uses
        loops = collect_collapsed_loops(stmt.body, d)
        loop_id = next(self.b._loop_ids)
        sched_fn = "cudadev_get_static_chunk"
        chunk: A.Expr = intlit(0)
        scl = d.first(ScheduleClause)
        if scl is not None:
            if scl.schedule == "dynamic":
                sched_fn = "cudadev_get_dynamic_chunk"
            elif scl.schedule == "guided":
                sched_fn = "cudadev_get_guided_chunk"
            if scl.chunk is not None:
                chunk = rename_idents(scl.chunk, rn)
        count_decls: list[A.Stmt] = []
        for i, info in enumerate(loops):
            count_decls.append(decl_long(
                f"__wsn{i}", cast(LONG, rename_idents(info.count, rn))))
        total = product([ident(f"__wsn{i}") for i in range(len(loops))])
        # index reconstruction from the linear iteration number __it
        recon_stmts: list[A.Stmt] = []
        for i, info in enumerate(loops):
            expr: A.Expr = ident("__it")
            for j in range(i + 1, len(loops)):
                expr = binop("/", expr, ident(f"__wsn{j}"))
            if i > 0:
                expr = binop("%", expr, ident(f"__wsn{i}"))
            if info.step != 1:
                expr = binop("*", expr, intlit(info.step))
            expr = binop("+", cast(info.var_type, expr),
                         rename_idents(info.lb, rn))
            recon_stmts.append(assign(ident(info.var), expr))
        body = self.transform_stmt(rename_idents(loops[-1].body, rn))
        inner = A.For(
            A.ExprStmt(A.Assign(ident("__it"), ident("__tlo"))),
            binop("<", ident("__it"), ident("__thi")),
            A.Assign(ident("__it"), intlit(1), "+"),
            block(recon_stmts, body),
        )
        out = block(
            count_decls,
            decl_long("__cnt", total),
            decl_long("__tlo"), decl_long("__thi"), decl_long("__it"),
            A.While(
                call(sched_fn, intlit(loop_id), intlit(0), ident("__cnt"),
                     cast(LONG, chunk), addr_of(ident("__tlo")),
                     addr_of(ident("__thi"))),
                block([inner]),
            ),
        )
        if not d.has(NowaitClause):
            out.body.append(callstmt("cudadev_barrier"))
        return out

    def _critical(self, stmt: A.PragmaStmt, d: Directive,
                  rn: dict[str, A.Expr]) -> A.Stmt:
        name_clause = d.first(NameClause)
        lock_id = self.b.lock_id(name_clause.name if name_clause else "")
        body = self.transform_stmt(rename_idents(stmt.body, rn))
        return block(
            decl("__done", INT, intlit(0)),
            A.While(
                A.Unary("!", ident("__done")),
                block(
                    A.If(
                        binop("==", call("cudadev_trylock", intlit(lock_id)),
                              intlit(0)),
                        block(
                            body,
                            callstmt("cudadev_unlock", intlit(lock_id)),
                            assign(ident("__done"), intlit(1)),
                        ),
                    ),
                ),
            ),
        )

    def _sections(self, stmt: A.PragmaStmt, d: Directive,
                  rn: dict[str, A.Expr]) -> A.Stmt:
        body = stmt.body
        if not isinstance(body, A.Compound):
            raise CudaXformError("sections requires a block", stmt.loc)
        sections: list[A.Stmt] = []
        for child in body.body:
            if isinstance(child, A.PragmaStmt) and child.directive is not None \
                    and child.directive.name == "section":
                sections.append(child.body)
            elif isinstance(child, A.PragmaStmt) and child.text.strip() == "omp section":
                sections.append(child.body)
            else:
                sections.append(child)
        sid = next(self.b._loop_ids)
        chain: Optional[A.Stmt] = None
        for i in range(len(sections) - 1, -1, -1):
            sec = self.transform_stmt(rename_idents(sections[i], rn))
            chain = A.If(binop("==", ident("__s"), intlit(i)), sec, chain)
        out = block(
            callstmt("cudadev_sections_init", intlit(sid),
                     intlit(len(sections))),
            decl("__s", INT),
            A.While(
                binop(">=",
                      A.Assign(ident("__s"),
                               call("cudadev_next_section", intlit(sid))),
                      intlit(0)),
                block([chain] if chain else []),
            ),
        )
        if not d.has(NowaitClause):
            out.body.append(callstmt("cudadev_barrier"))
        return out

    def _atomic(self, stmt: A.PragmaStmt, d: Directive,
                rn: dict[str, A.Expr]) -> A.Stmt:
        """Lower ``atomic [read|write|update|capture]`` onto the sim's
        atomic ops.  Aligned word loads/stores are atomic on the device
        (and in the lockstep simulator), so read/write emit the plain
        access; update forms route through ``atomicAdd`` where the
        hardware has one and the type-generic ``cudadev_atomic_red_*``
        otherwise; capture uses the atomic's returned old value."""
        clause = d.first(AtomicClause)
        kind = clause.atomic_kind if clause is not None else "update"
        body = stmt.body
        if isinstance(body, A.Compound) and len(body.body) == 1:
            body = body.body[0]
        if kind in ("read", "write"):
            expr = body.expr if isinstance(body, A.ExprStmt) else None
            if not (isinstance(expr, A.Assign) and expr.op is None):
                raise CudaXformError(
                    f"atomic {kind} requires a plain assignment", stmt.loc)
            return A.ExprStmt(rename_idents(clone(expr), rn))
        if kind == "capture":
            return self._atomic_capture(stmt, body, rn)
        upd = _match_atomic_update(body)
        if upd is None:
            raise CudaXformError(
                "unsupported atomic update form (expected x op= expr, "
                "x++/x--, x = x op expr, or x = expr op x)", stmt.loc)
        target, op, value = upd
        return A.ExprStmt(_atomic_update_call(
            op, rename_idents(clone(target), rn),
            rename_idents(clone(value), rn)))

    def _atomic_capture(self, stmt: A.PragmaStmt, body: A.Stmt,
                        rn: dict[str, A.Expr]) -> A.Stmt:
        # v = x++ / v = x--  (old value)
        if isinstance(body, A.ExprStmt) and isinstance(body.expr, A.Assign) \
                and body.expr.op is None \
                and isinstance(body.expr.value, A.Unary) \
                and body.expr.value.op in ("p++", "p--", "++", "--"):
            unary = body.expr.value
            op = "+" if "++" in unary.op else "-"
            update = _atomic_update_call(
                op, rename_idents(clone(unary.operand), rn), intlit(1))
            return A.ExprStmt(A.Assign(
                rename_idents(clone(body.expr.target), rn), update))
        # { v = x; x op= e; }  (old)  /  { x op= e; v = x; }  (new)
        if isinstance(body, A.Compound) and len(body.body) == 2:
            first, second = body.body
            fe = first.expr if isinstance(first, A.ExprStmt) else None
            se = second.expr if isinstance(second, A.ExprStmt) else None
            f_upd = _match_atomic_update(first)
            s_upd = _match_atomic_update(second)
            if isinstance(fe, A.Assign) and fe.op is None and s_upd is not None:
                target, op, value = s_upd
                update = _atomic_update_call(
                    op, rename_idents(clone(target), rn),
                    rename_idents(clone(value), rn))
                return A.ExprStmt(A.Assign(
                    rename_idents(clone(fe.target), rn), update))
            if f_upd is not None and isinstance(se, A.Assign) and se.op is None:
                # new-value capture: old OP e recomputes the stored value
                target, op, value = f_upd
                value_rn = rename_idents(clone(value), rn)
                update = _atomic_update_call(
                    op, rename_idents(clone(target), rn), value_rn)
                return A.ExprStmt(A.Assign(
                    rename_idents(clone(se.target), rn),
                    _red_combine(op if op != "-" else "+", update,
                                 clone(value_rn) if op != "-"
                                 else A.Unary("-", clone(value_rn)))))
        raise CudaXformError(
            "unsupported atomic capture form (expected v = x++/x--, "
            "{v = x; x op= e;} or {x op= e; v = x;})", stmt.loc)
