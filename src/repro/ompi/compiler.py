"""The ompicc driver: the full compilation chain of paper Fig. 2.

``OmpiCompiler.compile`` takes OpenMP C source text and produces a
:class:`CompiledProgram` holding

* the transformed host program (an AST, also unparse-able to C text),
* one standalone CUDA C *kernel file* per target construct (pure text —
  it is re-parsed and compiled by the nvcc simulator, exercising the real
  pipeline boundary),
* the compiled kernel images (PTX or cubin, per configuration).

``CompiledProgram.run()`` executes the host program under the cfront
interpreter with the ort runtime attached, offloading kernels to the
simulated Jetson Nano GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cfront import astnodes as A
from repro.cfront.ctypes_ import CType
from repro.cfront.errors import CFrontError
from repro.cfront.interp import Machine
from repro.cfront.parser import parse_translation_unit
from repro.cfront.unparse import unparse
from repro.cuda.device import DeviceProperties
from repro.cuda.nvcc import compile_device
from repro.cuda.ptx.jit import JitCache
from repro.devrt.api import DEVICE_LIBRARY_HEADER
from repro.hostrt.ort import Ort
from repro.ompi.callgraph import kernel_closure
from repro.ompi.config import OmpiConfig
from repro.ompi.outline import analyze_target
from repro.ompi.xform_cuda import CudaKernelBuilder, KernelPlan
from repro.ompi.xform_host import HostRewriter
from repro.openmp.directives import Directive
from repro.openmp.validator import validate_unit
from repro.timing.clock import VirtualClock


class OmpiError(CFrontError):
    pass


@dataclass
class ProgramRun:
    machine: Machine
    ort: Ort
    exit_code: int

    @property
    def stdout(self) -> str:
        return self.machine.output()

    @property
    def log(self):
        return self.ort.log

    @property
    def measured_time(self) -> float:
        """Kernel time + required memory operations (the paper's metric)."""
        return self.ort.log.measured_time

    @property
    def profile(self):
        """The run's :class:`repro.prof.activity.ActivityRecorder` — one
        shared ring across all devices, records stamped with their device
        ordinal (None when profiling was disabled)."""
        return self.ort.prof


@dataclass
class CompiledProgram:
    name: str
    config: OmpiConfig
    host_unit: A.TranslationUnit
    plans: list[KernelPlan]
    kernel_sources: dict[str, str]
    images: dict[str, object]
    declare_target_globals: dict[str, CType] = field(default_factory=dict)

    @property
    def host_source(self) -> str:
        return unparse(self.host_unit)

    def image_for_arch(self, kernel_name: str, arch: Optional[str]):
        """The kernel's image, retargeted for ``arch`` when needed.

        A cubin is architecture-specific: binding a program compiled for
        sm_53 to a registry that also holds an sm_70 device re-assembles
        the kernel's (unmutated) portable IR for that arch, mirroring how
        real OMPi ships one kernel file per *target* and compiles per
        device.  Retargeted images memoise under ``name@arch`` in the
        shared ``images`` dict so repeated binds are free; PTX images are
        arch-agnostic and pass through (the JIT keys on device arch)."""
        image = self.images[kernel_name]
        from repro.cuda.ptx.images import CubinImage, assemble_cubin
        if (arch and isinstance(image, CubinImage) and image.arch != arch):
            key = f"{kernel_name}@{arch}"
            cached = self.images.get(key)
            if cached is None:
                cached = assemble_cubin(image.module, arch,
                                        linked=image.linked)
                self.images[key] = cached
            return cached
        return image

    def bind(self, ort: Ort, seed_arrays: Optional[dict] = None) -> None:
        """Attach this program to a runtime: register the kernel images
        with every device module (retargeted to each device's arch on a
        heterogeneous registry), install the ``*_hostfn`` fallback twins
        on the initial device, seed global arrays and give declare-target
        globals their device residence.  Shared by :meth:`run` and by the
        serving runtime, which drives a leased :class:`Ort` itself."""
        machine = ort.machine
        for kernel_name in self.kernel_sources:
            for module in ort.devices:
                # per-arch retargeting is a registry-backend feature; on
                # the classic single-profile path the raw image is bound
                # as-is and a mismatched cubin still fails at load time
                arch = (module.driver.device_props.arch
                        if getattr(module, "backend", None) is not None
                        else None)
                module.register_kernel_image(
                    kernel_name, self.image_for_arch(kernel_name, arch))
        for plan in self.plans:
            ort.host_device.register_fallback(plan.kernel_name,
                                              plan.kernel_name + "_hostfn")
        if seed_arrays:
            for name, values in seed_arrays.items():
                if name in machine.globals:
                    machine.global_array(name)[...] = values
        # give declare-target globals their device residence (eager load of
        # the owning kernel module; see Ort.bind_declare_target)
        for gname, gtype in self.declare_target_globals.items():
            owner = None
            for plan in self.plans:
                for node in plan.kernel_unit.decls:
                    if isinstance(node, A.GlobalDecl) and any(
                            d.name == gname for d in node.decls):
                        owner = plan.kernel_name
                        break
                if owner:
                    break
            if owner is not None and gname in machine.globals:
                binding = machine.global_binding(gname)
                ort.bind_declare_target(gname, binding.addr,
                                        gtype.sizeof(), owner)

    def run(
        self,
        device: Optional[DeviceProperties] = None,
        clock: Optional[VirtualClock] = None,
        jit_cache: Optional[JitCache] = None,
        launch_mode: str = "auto",
        seed_arrays: Optional[dict] = None,
        heap_capacity: int = 1 << 30,
        main: bool = True,
        profile=None,
        ompt: Optional[dict] = None,
        faults=None,
        recovery=None,
        num_devices: Optional[int] = None,
        host_fastpath: Optional[str] = None,
        devices=None,
    ) -> ProgramRun:
        machine = Machine(self.host_unit, heap_capacity=heap_capacity,
                          host_fastpath=host_fastpath if host_fastpath
                          is not None else self.config.host_fastpath)
        ort = Ort(machine, device=device, clock=clock, jit_cache=jit_cache,
                  launch_mode=launch_mode,
                  fastpath=self.config.kernel_fastpath,
                  profile=profile if profile is not None
                  else self.config.profile,
                  faults=faults if faults is not None else self.config.faults,
                  recovery=recovery if recovery is not None
                  else self.config.recovery,
                  num_devices=num_devices if num_devices is not None
                  else self.config.num_devices,
                  backends=devices if devices is not None
                  else self.config.devices)
        if ompt:
            for event, fn in ompt.items():
                ort.ompt.set_callback(event, fn)
        self.bind(ort, seed_arrays=seed_arrays)
        exit_code = machine.run() if main else 0
        ort.taskwait()  # implicit join of outstanding nowait tasks at exit
        if ort.prof is not None and ort.prof_path:
            from repro.prof.chrome import write_chrome_trace
            names = {k: m.backend.name for k, m in enumerate(ort.devices)
                     if getattr(m, "backend", None) is not None}
            write_chrome_trace(ort.prof, ort.prof_path,
                               device_names=names or None)
        return ProgramRun(machine, ort, exit_code)


class OmpiCompiler:
    def __init__(self, config: Optional[OmpiConfig] = None):
        self.config = config or OmpiConfig()

    # ------------------------------------------------------------------ compile
    def compile(self, source: str, name: str = "prog") -> CompiledProgram:
        unit = parse_translation_unit(source, f"{name}.c")
        validate_unit(unit)
        declare_globals, declare_fns = self._declare_target_items(unit)
        global_scope: dict[str, CType] = {}
        for d in unit.decls:
            if isinstance(d, A.GlobalDecl):
                for v in d.decls:
                    global_scope[v.name] = v.type
        known_functions = {d.name for d in unit.decls if isinstance(d, A.FuncDef)}

        rewriter = HostRewriter(self.config, name)
        plans: list[KernelPlan] = []
        kernel_count = 0

        def rewrite_stmt(stmt: A.Stmt, scopes: list[dict[str, CType]]) -> A.Stmt:
            nonlocal kernel_count
            if isinstance(stmt, A.Compound):
                scopes.append({})
                new = A.Compound([rewrite_stmt(s, scopes) for s in stmt.body])
                scopes.pop()
                return new
            if isinstance(stmt, A.DeclStmt):
                for d in stmt.decls:
                    scopes[-1][d.name] = d.type
                return stmt
            if isinstance(stmt, A.If):
                return A.If(stmt.cond, rewrite_stmt(stmt.then, scopes),
                            rewrite_stmt(stmt.other, scopes)
                            if stmt.other else None, loc=stmt.loc)
            if isinstance(stmt, A.While):
                return A.While(stmt.cond, rewrite_stmt(stmt.body, scopes),
                               loc=stmt.loc)
            if isinstance(stmt, A.DoWhile):
                return A.DoWhile(rewrite_stmt(stmt.body, scopes), stmt.cond,
                                 loc=stmt.loc)
            if isinstance(stmt, A.For):
                scopes.append({})
                if isinstance(stmt.init, A.DeclStmt):
                    for d in stmt.init.decls:
                        scopes[-1][d.name] = d.type
                new = A.For(stmt.init, stmt.cond, stmt.step,
                            rewrite_stmt(stmt.body, scopes), loc=stmt.loc)
                scopes.pop()
                return new
            if isinstance(stmt, A.PragmaStmt):
                return rewrite_pragma(stmt, scopes)
            return stmt

        def flat_scope(scopes: list[dict[str, CType]]) -> dict[str, CType]:
            out = dict(global_scope)
            for s in scopes:
                out.update(s)
            return out

        def rewrite_pragma(stmt: A.PragmaStmt,
                           scopes: list[dict[str, CType]]) -> A.Stmt:
            nonlocal kernel_count
            d: Directive = stmt.directive
            if d is None:
                return stmt  # non-omp pragma, keep
            scope = flat_scope(scopes)
            if d.is_target_construct:
                kernel_name = f"{name}_kernel{kernel_count}"
                kernel_count += 1
                region = analyze_target(kernel_name, stmt, scope,
                                        set(declare_globals), known_functions)
                device_fns = kernel_closure(unit, region.called_functions,
                                            kernel_name)
                builder = CudaKernelBuilder(region, unit, self.config, scope,
                                            device_fns)
                plan = builder.build()
                # declare-target globals referenced by the region
                for gname in region.device_globals:
                    gtype = declare_globals[gname]
                    plan.kernel_unit.decls.insert(0, A.GlobalDecl([
                        A.VarDecl(gname, gtype, None, None, ("__device__",))
                    ]))
                plans.append(plan)
                rewriter.make_fallback_fn(plan, region.body, scope)
                return rewriter.launch_block(plan, d, scope)
            if d.name == "target data":
                inner = rewrite_stmt(stmt.body, scopes)
                return rewriter.target_data_block(d, inner, scope)
            if d.name in ("target update", "target enter data",
                          "target exit data"):
                return rewriter.standalone_data_stmt(d, scope)
            if d.name in ("parallel", "parallel for", "parallel sections"):
                return rewriter.outline_host_parallel(
                    stmt, d, scope, set(global_scope)
                )
            if d.name == "barrier":
                from repro.ompi.astutil import callstmt
                return callstmt("ort_host_barrier")
            if d.name == "taskwait":
                from repro.ompi.astutil import callstmt
                return callstmt("ort_taskwait")
            if d.name in ("for", "single", "master", "critical", "atomic",
                          "sections", "section"):
                # orphaned worksharing outside any parallel region: a team
                # of one executes it directly
                body = stmt.body if stmt.body is not None else A.ExprStmt(None)
                return rewrite_stmt(body, scopes)
            raise OmpiError(f"unsupported host-side directive "
                            f"'#pragma omp {d.name}'", stmt.loc)

        # rewrite every function
        new_decls: list[A.Node] = []
        for node in unit.decls:
            if isinstance(node, A.PragmaDecl):
                continue  # declare target markers consumed
            if isinstance(node, A.FuncDef):
                scopes: list[dict[str, CType]] = [
                    {p.name: p.type.decay() for p in node.params}
                ]
                new_body = rewrite_stmt(node.body, scopes)
                assert isinstance(new_body, A.Compound)
                new_decls.append(A.FuncDef(node.name, node.return_type,
                                           node.params, new_body, node.quals,
                                           loc=node.loc))
            else:
                new_decls.append(node)
        host_unit = A.TranslationUnit(
            new_decls + rewriter.fallback_fns + rewriter.host_parallel_fns,
            filename=f"{name}_ompi.c",
        )

        # device compilation (paper Fig. 2, nvcc box)
        kernel_sources: dict[str, str] = {}
        images: dict[str, object] = {}
        for plan in plans:
            text = DEVICE_LIBRARY_HEADER + "\n" + unparse(plan.kernel_unit)
            kernel_sources[plan.kernel_name] = text
            images[plan.kernel_name] = compile_device(
                text, plan.kernel_name, mode=self.config.binary_mode,
                arch=self.config.arch,
            )
        return CompiledProgram(
            name=name,
            config=self.config,
            host_unit=host_unit,
            plans=plans,
            kernel_sources=kernel_sources,
            images=images,
            declare_target_globals=declare_globals,
        )

    @staticmethod
    def _declare_target_items(unit: A.TranslationUnit) -> tuple[dict[str, CType], set[str]]:
        globals_: dict[str, CType] = {}
        fns: set[str] = set()
        depth = 0
        for node in unit.decls:
            if isinstance(node, A.PragmaDecl) and node.directive is not None:
                if node.directive.name == "declare target":
                    depth += 1
                elif node.directive.name == "end declare target":
                    depth -= 1
                continue
            if depth > 0:
                if isinstance(node, A.GlobalDecl):
                    for v in node.decls:
                        globals_[v.name] = v.type
                elif isinstance(node, (A.FuncDef, A.FuncProto)):
                    fns.add(node.name)
        return globals_, fns
