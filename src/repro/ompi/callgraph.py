"""Kernel call-graph discovery (paper §3).

"The compiler then derives the call graph of the subtree, by discovering
all called functions inside the kernel.  This step is required in order to
inject all the necessary function prototypes and definitions and embed
additional necessary wrapper functions."

Built on networkx so the closure, ordering and cycle detection are
standard graph operations.
"""

from __future__ import annotations

import networkx as nx

from repro.cfront import astnodes as A
from repro.cfront.errors import CFrontError
from repro.ompi.outline import called_names


class CallGraphError(CFrontError):
    pass


#: names resolved by the device runtime library / builtins, never emitted
RUNTIME_NAMES = frozenset(
    {"printf", "sqrt", "sqrtf", "fabs", "fabsf", "exp", "expf", "log", "logf",
     "sin", "sinf", "cos", "cosf", "floor", "floorf", "ceil", "ceilf",
     "pow", "powf", "fmin", "fminf", "fmax", "fmaxf", "fmod", "fmodf",
     "__syncthreads", "__bar_sync",
     "atomicCAS", "atomicAdd", "atomicExch", "atomicMax", "atomicMin"}
)


def build_call_graph(unit: A.TranslationUnit) -> nx.DiGraph:
    """Call graph over the translation unit's function definitions."""
    graph = nx.DiGraph()
    defs = {d.name: d for d in unit.decls if isinstance(d, A.FuncDef)}
    for name, fn in defs.items():
        graph.add_node(name)
        for callee in called_names(fn.body):
            if callee in defs:
                graph.add_edge(name, callee)
    return graph


def kernel_closure(
    unit: A.TranslationUnit, seeds: list[str], kernel_name: str = "<kernel>"
) -> list[A.FuncDef]:
    """All function definitions a kernel needs, callees before callers
    (so the emitted kernel file compiles top-down without prototypes
    beyond those injected for mutual visibility)."""
    graph = build_call_graph(unit)
    defs = {d.name: d for d in unit.decls if isinstance(d, A.FuncDef)}
    needed: set[str] = set()
    frontier = [s for s in seeds if s in defs]
    while frontier:
        name = frontier.pop()
        if name in needed:
            continue
        needed.add(name)
        frontier.extend(graph.successors(name))
    sub = graph.subgraph(needed)
    try:
        ordered = list(reversed(list(nx.topological_sort(sub))))
    except nx.NetworkXUnfeasible:
        cycle = nx.find_cycle(sub)
        raise CallGraphError(
            f"{kernel_name}: recursive call chain in device code: "
            + " -> ".join(edge[0] for edge in cycle)
        ) from None
    return [defs[name] for name in ordered]
