"""Host transformation set: OpenMP constructs -> C + ort runtime calls.

``target``-family constructs become data-environment management plus the
three-phase offload; host ``parallel`` regions are outlined into host
functions driven by the simulated A57 team.  The transformed host program
is plain C, executable by the cfront interpreter with the ort natives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cfront import astnodes as A
from repro.cfront.ctypes_ import (
    ArrayType, BasicType, CType, INT, LONG, PointerType, VOID, VOIDP,
)
from repro.cfront.errors import CFrontError
from repro.openmp.clauses import (
    DataSharingClause, DependClause, DeviceClause, ExprClause, IfClause,
    MapClause, MotionClause, NowaitClause, ReductionClause, ScheduleClause,
)
from repro.rt_async.taskgraph import DEP_CODES
from repro.openmp.directives import Directive
from repro.ompi.astutil import (
    addr_of, assign, binop, block, call, callstmt, cast, ceil_div, clone,
    decl, decl_long, deref, ident, intlit, rename_idents, sizeof_expr,
    sizeof_type, string, strip_pragmas,
)
from repro.ompi.config import OmpiConfig
from repro.ompi.outline import (
    CapturedVar, collect_identifiers, locally_declared,
)
from repro.ompi.xform_cuda import (
    KernelPlan, analyze_canonical_loop, collect_collapsed_loops,
)
from repro.hostrt.reduction import RED_OPS, typecode_of

MAP_CODE = {"alloc": 0, "to": 1, "from": 2, "tofrom": 3,
            "release": 4, "delete": 5}


class HostXformError(CFrontError):
    pass


def map_ptr_and_size(cv: CapturedVar) -> tuple[A.Expr, A.Expr, A.Expr]:
    """(base pointer expr, mapped pointer expr, byte size expr) for one
    captured variable, host-side."""
    if not cv.is_pointerish:
        base = addr_of(ident(cv.name))
        return base, clone(base), sizeof_expr(ident(cv.name))
    lower: Optional[A.Expr] = None
    length: Optional[A.Expr] = None
    if cv.section is not None:
        lower, length = cv.section
    base = ident(cv.name)
    mapped: A.Expr = ident(cv.name)
    if lower is not None and not (isinstance(lower, A.IntLit) and lower.value == 0):
        mapped = binop("+", mapped, clone(lower))
    if length is not None:
        size = binop("*", cast(LONG, clone(length)),
                     sizeof_type(cv.elem_type()))
    elif isinstance(cv.ctype, ArrayType) and cv.ctype.length is not None:
        size = sizeof_expr(ident(cv.name))
    else:
        raise HostXformError(
            f"cannot determine the mapped size of {cv.name!r} "
            "(pointer mapped without an array section)"
        )
    return base, mapped, size


def motion_ptr_and_size(name: str, section, scope: dict[str, CType]):
    cv = CapturedVar(name, scope[name], "to", section)
    return map_ptr_and_size(cv)


@dataclass
class HostRewriter:
    """Statement-level rewriting of one translation unit's host code."""

    config: OmpiConfig
    prog_name: str
    #: filled during rewriting
    plans: list[KernelPlan] = field(default_factory=list)
    host_parallel_fns: list[A.FuncDef] = field(default_factory=list)
    fallback_fns: list[A.FuncDef] = field(default_factory=list)
    _hp_count: int = 0

    # -- target constructs ---------------------------------------------------
    def _task_dep_stmts(self, directive: Directive,
                        scope: dict[str, CType]) -> list[A.Stmt]:
        """``ort_task_dep`` registrations for every depend() list item.

        Dependences are keyed on the item's host *base address* (the whole
        object, conservatively, even when a section is written)."""
        stmts: list[A.Stmt] = []
        for clause in directive.clauses_of(DependClause):
            code = DEP_CODES[clause.dep_type]   # validator checked the type
            for item in clause.items:
                if item.name not in scope:
                    raise HostXformError(
                        f"unknown variable {item.name!r} in depend clause")
                ctype = scope[item.name]
                addr: A.Expr = (ident(item.name)
                                if isinstance(ctype, (PointerType, ArrayType))
                                else addr_of(ident(item.name)))
                stmts.append(callstmt("ort_task_dep", ident("__dev"), addr,
                                      intlit(code)))
        return stmts

    @staticmethod
    def _wrap_task(directive: Directive, dep_stmts: list[A.Stmt],
                   body_stmts: list[A.Stmt]) -> list[A.Stmt]:
        """Wrap an offload sequence into a deferred task when the construct
        carries nowait and/or depend clauses.  depend without nowait is an
        *undeferred* task: it still orders through the graph but the host
        blocks on its completion (ort_task_end's flag)."""
        nowait = directive.first(NowaitClause) is not None
        if not nowait and not dep_stmts:
            return body_stmts
        return (dep_stmts
                + [callstmt("ort_task_begin", ident("__dev"))]
                + body_stmts
                + [callstmt("ort_task_end", ident("__dev"),
                            intlit(0 if nowait else 1))])

    def launch_block(self, plan: KernelPlan, directive: Directive,
                     scope: dict[str, CType]) -> A.Stmt:
        dev_clause = directive.first(DeviceClause)
        dev_expr: A.Expr = clone(dev_clause.expr) if dev_clause else intlit(-1)
        stmts: list[A.Stmt] = []
        # mapping phase (by-value scalars bypass the data environment)
        for cv in plan.params:
            if cv.by_value:
                continue
            base, mapped, size = map_ptr_and_size(cv)
            map_code = MAP_CODE["to" if cv.map_type == "private" else cv.map_type]
            stmts.append(callstmt("ort_map", ident("__dev"), mapped,
                                  cast(LONG, size), intlit(map_code)))
        # argument preparation (kernel parameter order)
        for cv in plan.params:
            if cv.by_value:
                stmts.append(callstmt("ort_arg_val", ident("__dev"),
                                      ident(cv.name)))
                continue
            base, mapped, _size = map_ptr_and_size(cv)
            stmts.append(callstmt("ort_arg_ptr", ident("__dev"), base, mapped))
        # tree-mode reductions: register each scalar *after* the regular
        # args (its partials buffer becomes the next kernel argument, in
        # plan.reductions order — matching the trailing __redp_* params)
        if plan.reductions and plan.reduction_mode == "tree":
            for name, op, ctype in plan.reductions:
                stmts.append(callstmt(
                    "ort_red_scalar", ident("__dev"), addr_of(ident(name)),
                    intlit(RED_OPS[op]), intlit(typecode_of(ctype.dtype()))))
        stmts.extend(self._dim_stmts(plan))
        stmts.append(callstmt(
            "ort_offload", ident("__dev"), string(plan.kernel_name),
            ident("__gx"), ident("__gy"), ident("__gz"),
            ident("__bx"), ident("__by"), ident("__bz"),
        ))
        # unmapping phase (reverse order)
        for cv in reversed(plan.params):
            if cv.by_value:
                continue
            _base, mapped, _size = map_ptr_and_size(cv)
            stmts.append(callstmt("ort_unmap", ident("__dev"), mapped,
                                  intlit(MAP_CODE[cv.map_type if cv.map_type != "private" else "release"])))
        # cross-team combine: fold the partials in fixed team order onto
        # the host value (after the unmap copy-back, which in tree mode
        # returns the scalar untouched; inside the shard bracket so the
        # runtime can gather each slot from its owning device)
        if plan.reductions and plan.reduction_mode == "tree":
            stmts.append(callstmt("ort_red_end", ident("__dev")))
        # shard(n): bracket the whole offload sequence — the runtime
        # replicates maps per device, splits the launch, and joins with the
        # diff-merge at shard end (validator: no nowait/depend/device here)
        shard = directive.first(ExprClause, "shard")
        if shard is not None:
            stmts = ([callstmt("ort_shard_begin", clone(shard.expr))]
                     + stmts
                     + [callstmt("ort_shard_end")])
        launch = A.Compound(
            [decl("__dev", INT, dev_expr)]
            + self._wrap_task(directive, self._task_dep_stmts(directive, scope),
                              stmts)
        )
        if_clause = directive.first(IfClause)
        if if_clause is not None:
            fallback = self.fallback_call(plan)
            return A.If(clone(if_clause.expr), launch, fallback)
        return launch

    def _dim_stmts(self, plan: KernelPlan) -> list[A.Stmt]:
        stmts: list[A.Stmt] = []
        if plan.mode == "mw":
            # paper §4.2.2: master/worker kernels launch with 128 threads
            teams = clone(plan.num_teams) if plan.num_teams is not None else intlit(1)
            stmts.append(decl_long("__gx", cast(LONG, teams)))
            stmts.append(decl_long("__gy", intlit(1)))
            stmts.append(decl_long("__gz", intlit(1)))
            stmts.append(decl_long("__bx", intlit(self.config.mw_block_threads)))
            stmts.append(decl_long("__by", intlit(1)))
            stmts.append(decl_long("__bz", intlit(1)))
            return stmts
        # combined: block shape from num_threads, grid from num_teams and
        # the (host-evaluated) iteration counts — OMPi's internal 1D->2D
        # mapping "to match the block and grid dimensions of the
        # equivalent cuda applications" (paper §5)
        nth = clone(plan.num_threads) if plan.num_threads is not None \
            else intlit(self.config.default_num_threads)
        stmts.append(decl_long("__nth", cast(LONG, nth)))
        if plan.thread_limit is not None:
            limit = cast(LONG, clone(plan.thread_limit))
            stmts.append(A.If(
                binop(">", ident("__nth"), limit),
                assign(ident("__nth"), clone(limit)),
            ))
        shape = self.config.block_shape
        if shape is not None:
            bx, by, bz = shape
            stmts.append(decl_long("__bx", intlit(bx)))
            stmts.append(decl_long("__by", intlit(by)))
            stmts.append(decl_long("__bz", intlit(bz)))
        else:
            stmts.append(decl_long("__bx", A.Cond(
                binop("<", ident("__nth"), intlit(32)),
                ident("__nth"), intlit(32))))
            stmts.append(decl_long("__by", ceil_div(ident("__nth"),
                                                    ident("__bx"))))
            stmts.append(decl_long("__bz", intlit(1)))
        # total iteration count and per-dimension counts (host names)
        for i, count in enumerate(plan.host_counts):
            stmts.append(decl_long(f"__hn{i}", cast(LONG, clone(count))))
        total = ident("__hn0")
        for i in range(1, len(plan.host_counts)):
            total = binop("*", total, ident(f"__hn{i}"))
        stmts.append(decl_long("__hniter", total))
        teams = clone(plan.num_teams) if plan.num_teams is not None \
            else ceil_div(ident("__hniter"),
                          binop("*", binop("*", ident("__bx"), ident("__by")),
                                ident("__bz")))
        stmts.append(decl_long("__teams", cast(LONG, teams)))
        ndims = len(plan.host_counts)
        if ndims == 3:
            # x covers the innermost dimension, y the middle, z the rest
            stmts.append(decl_long("__gx", ceil_div(ident("__hn2"),
                                                    ident("__bx"))))
            stmts.append(A.If(binop("<", ident("__gx"), intlit(1)),
                              assign(ident("__gx"), intlit(1))))
            stmts.append(decl_long("__gy", ceil_div(ident("__hn1"),
                                                    ident("__by"))))
            stmts.append(A.If(binop("<", ident("__gy"), intlit(1)),
                              assign(ident("__gy"), intlit(1))))
            stmts.append(decl_long("__gz", ceil_div(
                ident("__teams"), binop("*", ident("__gx"), ident("__gy")))))
            stmts.append(A.If(binop("<", ident("__gz"), intlit(1)),
                              assign(ident("__gz"), intlit(1))))
        elif ndims == 2:
            # innermost count spreads along grid.x
            inner = ident(f"__hn{ndims - 1}")
            stmts.append(decl_long("__gx", ceil_div(
                ceil_div(clone(inner), ident("__bx")), intlit(1))))
            stmts.append(A.If(binop("<", ident("__gx"), intlit(1)),
                              assign(ident("__gx"), intlit(1))))
            stmts.append(decl_long("__gy", ceil_div(ident("__teams"),
                                                    ident("__gx"))))
            stmts.append(A.If(binop("<", ident("__gy"), intlit(1)),
                              assign(ident("__gy"), intlit(1))))
            stmts.append(decl_long("__gz", intlit(1)))
        else:
            stmts.append(decl_long("__gx", ident("__teams")))
            stmts.append(A.If(binop("<", ident("__gx"), intlit(1)),
                              assign(ident("__gx"), intlit(1))))
            stmts.append(decl_long("__gy", intlit(1)))
            stmts.append(decl_long("__gz", intlit(1)))
        return stmts

    def fallback_call(self, plan: KernelPlan) -> A.Stmt:
        args: list[A.Expr] = []
        for cv in plan.params:
            if cv.is_pointerish or cv.by_value:
                args.append(ident(cv.name))
            else:
                args.append(addr_of(ident(cv.name)))
        # the hostfn twin computes the whole reduction sequentially, so
        # its trailing __redp_* partials params are unused — pass nulls
        if plan.reductions and plan.reduction_mode == "tree":
            args.extend(intlit(0) for _ in plan.reductions)
        return A.ExprStmt(A.Call(ident(plan.kernel_name + "_hostfn"), args))

    def make_fallback_fn(self, plan: KernelPlan, body: A.Stmt,
                         scope: Optional[dict[str, CType]] = None) -> A.FuncDef:
        """Sequential host version of the target region (used for the
        initial device / if(false) launches)."""
        params: list[A.Param] = []
        prologue: list[A.Stmt] = []
        renames: dict[str, A.Expr] = {}
        for cv in plan.params:
            if cv.is_pointerish:
                params.append(A.Param(cv.name, PointerType(cv.elem_type())))
            elif cv.by_value:
                params.append(A.Param(cv.name, cv.ctype))
            else:
                params.append(A.Param(cv.name + "_p", PointerType(cv.ctype)))
                renames[cv.name] = deref(ident(cv.name + "_p"))
        # arity parity with the kernel: tree-mode reductions add trailing
        # partials pointers the sequential twin never touches
        if plan.reductions and plan.reduction_mode == "tree":
            params.extend(A.Param("__redp_" + name, PointerType(ctype))
                          for name, _op, ctype in plan.reductions)
        # private/loop variables the region uses but does not declare
        captured = {cv.name for cv in plan.params}
        local = locally_declared(body)
        for name in sorted(collect_identifiers(body)):
            if name in captured or name in local or scope is None:
                continue
            ctype = scope.get(name)
            if ctype is not None and isinstance(ctype, BasicType):
                prologue.append(decl(name, ctype))
        stripped = strip_pragmas(body)
        fn_body = block(prologue, rename_idents(stripped, renames))
        fn = A.FuncDef(plan.kernel_name + "_hostfn", VOID, params, fn_body)
        self.fallback_fns.append(fn)
        return fn

    # -- target data / update / enter / exit ------------------------------------
    def target_data_block(self, directive: Directive, inner: A.Stmt,
                          scope: dict[str, CType]) -> A.Stmt:
        dev_clause = directive.first(DeviceClause)
        dev_expr: A.Expr = clone(dev_clause.expr) if dev_clause else intlit(-1)
        maps: list[tuple[A.Expr, A.Expr, int]] = []
        stmts: list[A.Stmt] = [decl("__dev", INT, dev_expr)]
        for clause in directive.clauses_of(MapClause):
            for item in clause.items:
                if item.name not in scope:
                    raise HostXformError(f"unknown variable {item.name!r} in map")
                cv = CapturedVar(item.name, scope[item.name], clause.map_type,
                                 item.sections[0] if item.sections else None)
                _base, mapped, size = map_ptr_and_size(cv)
                stmts.append(callstmt("ort_map", ident("__dev"), mapped,
                                      cast(LONG, size),
                                      intlit(MAP_CODE[clause.map_type])))
                maps.append((mapped, size, MAP_CODE[clause.map_type]))
        stmts.append(inner)
        for mapped, _size, code in reversed(maps):
            stmts.append(callstmt("ort_unmap", ident("__dev"), clone(mapped),
                                  intlit(code)))
        return A.Compound(stmts)

    def standalone_data_stmt(self, directive: Directive,
                             scope: dict[str, CType]) -> A.Stmt:
        dev_clause = directive.first(DeviceClause)
        dev_expr: A.Expr = clone(dev_clause.expr) if dev_clause else intlit(-1)
        stmts: list[A.Stmt] = []
        if directive.name == "target update":
            for clause in directive.clauses_of(MotionClause):
                fn = "ort_update_to" if clause.direction == "to" else "ort_update_from"
                for item in clause.items:
                    cv = CapturedVar(item.name, scope[item.name], "to",
                                     item.sections[0] if item.sections else None)
                    _b, mapped, size = map_ptr_and_size(cv)
                    stmts.append(callstmt(fn, ident("__dev"), mapped,
                                          cast(LONG, size)))
        elif directive.name == "target enter data":
            for clause in directive.clauses_of(MapClause):
                for item in clause.items:
                    cv = CapturedVar(item.name, scope[item.name],
                                     clause.map_type,
                                     item.sections[0] if item.sections else None)
                    _b, mapped, size = map_ptr_and_size(cv)
                    stmts.append(callstmt("ort_map", ident("__dev"), mapped,
                                          cast(LONG, size),
                                          intlit(MAP_CODE[clause.map_type])))
        elif directive.name == "target exit data":
            for clause in directive.clauses_of(MapClause):
                for item in clause.items:
                    cv = CapturedVar(item.name, scope[item.name],
                                     clause.map_type,
                                     item.sections[0] if item.sections else None)
                    _b, mapped, _size = map_ptr_and_size(cv)
                    stmts.append(callstmt("ort_unmap", ident("__dev"), mapped,
                                          intlit(MAP_CODE[clause.map_type])))
        else:
            raise HostXformError(
                f"unexpected standalone directive {directive.name}")
        return A.Compound(
            [decl("__dev", INT, dev_expr)]
            + self._wrap_task(directive, self._task_dep_stmts(directive, scope),
                              stmts)
        )

    # -- host parallel regions ----------------------------------------------------
    def outline_host_parallel(self, stmt: A.PragmaStmt, d: Directive,
                              scope: dict[str, CType],
                              global_names: set[str]) -> A.Stmt:
        idx = self._hp_count
        self._hp_count += 1
        fn_name = f"{self.prog_name}_hpar{idx}"
        body = stmt.body
        region_body: A.Stmt = body
        if d.name == "parallel for":
            region_body = A.PragmaStmt(
                "omp for", body,
                directive=Directive("for", [c for c in d.clauses if isinstance(
                    c, (ScheduleClause, NowaitClause))]),
            )
        private: set[str] = set()
        firstprivate: set[str] = set()
        for clause in d.clauses_of(DataSharingClause):
            if clause.kind == "private":
                private.update(clause.names)
            elif clause.kind == "firstprivate":
                firstprivate.update(clause.names)
        if d.includes("for") and isinstance(body, A.For):
            try:
                private.add(analyze_canonical_loop(body).var)
            except CFrontError:
                pass
        used = collect_identifiers(body)
        local = locally_declared(body)
        captured: list[tuple[str, CType]] = []
        for name in sorted(used):
            if name in local or name in private or name in global_names:
                continue
            ctype = scope.get(name)
            if ctype is None:
                continue
            captured.append((name, ctype))
        params: list[A.Param] = []
        call_args: list[A.Stmt] = []
        renames: dict[str, A.Expr] = {}
        prologue: list[A.Stmt] = []
        for name, ctype in captured:
            if isinstance(ctype, (PointerType, ArrayType)):
                elem = ctype.pointee if isinstance(ctype, PointerType) else ctype.elem
                params.append(A.Param(name, PointerType(elem)))
                call_args.append(callstmt("ort_parg", ident(name)))
            elif name in firstprivate:
                params.append(A.Param(name + "_p", PointerType(ctype)))
                call_args.append(callstmt("ort_parg", addr_of(ident(name))))
                prologue.append(decl(name, ctype, deref(ident(name + "_p"))))
            else:
                params.append(A.Param(name + "_p", PointerType(ctype)))
                call_args.append(callstmt("ort_parg", addr_of(ident(name))))
                renames[name] = deref(ident(name + "_p"))
        for name in sorted(private - local):
            ctype = scope.get(name)
            if ctype is not None and isinstance(ctype, BasicType):
                prologue.append(decl(name, ctype))
        xf = _HostRegionTransformer(renames)
        fn_body = block(prologue, xf.transform_stmt(region_body))
        self.host_parallel_fns.append(
            A.FuncDef(fn_name, VOID, params, fn_body)
        )
        nthr = d.first(ExprClause, "num_threads")
        nthr_expr = clone(nthr.expr) if nthr else intlit(-1)
        return A.Compound(call_args + [
            callstmt("ort_execute_parallel", string(fn_name), nthr_expr),
        ])


class _HostRegionTransformer:
    """Rewrites a host parallel-region body for per-thread execution."""

    def __init__(self, renames: dict[str, A.Expr]):
        self.renames = renames

    def transform_stmt(self, stmt: A.Stmt) -> A.Stmt:
        if isinstance(stmt, A.Compound):
            return A.Compound([self.transform_stmt(s) for s in stmt.body])
        if isinstance(stmt, A.PragmaStmt):
            return self._transform_pragma(stmt)
        if isinstance(stmt, A.If):
            return A.If(rename_idents(stmt.cond, self.renames),
                        self.transform_stmt(stmt.then),
                        self.transform_stmt(stmt.other) if stmt.other else None)
        if isinstance(stmt, A.For):
            return A.For(
                rename_idents(stmt.init, self.renames) if stmt.init else None,
                rename_idents(stmt.cond, self.renames) if stmt.cond else None,
                rename_idents(stmt.step, self.renames) if stmt.step else None,
                self.transform_stmt(stmt.body),
            )
        if isinstance(stmt, A.While):
            return A.While(rename_idents(stmt.cond, self.renames),
                           self.transform_stmt(stmt.body))
        return rename_idents(stmt, self.renames)

    def _transform_pragma(self, stmt: A.PragmaStmt) -> A.Stmt:
        from repro.openmp.pragma_parser import parse_omp_pragma
        d = stmt.directive or parse_omp_pragma(stmt.text)
        if d.name in ("for", "for simd"):
            return self._worksharing_for(stmt, d)
        if d.name == "simd":
            return self.transform_stmt(stmt.body)
        if d.name == "sections":
            return self._sections(stmt, d)
        if d.name == "barrier":
            return callstmt("ort_host_barrier")
        if d.name in ("critical", "atomic"):
            # the sequential team simulation serialises threads anyway
            body = stmt.body if stmt.body is not None else A.ExprStmt(None)
            return self.transform_stmt(body)
        if d.name in ("single", "master"):
            return A.If(binop("==", call("omp_get_thread_num"), intlit(0)),
                        self.transform_stmt(stmt.body))
        raise HostXformError(
            f"'#pragma omp {d.name}' inside a host parallel region is not "
            "supported", stmt.loc
        )

    def _sections(self, stmt: A.PragmaStmt, d: Directive) -> A.Stmt:
        """Round-robin section assignment across the (sequentially
        simulated) team: section i runs on thread i mod T."""
        body = stmt.body
        if not isinstance(body, A.Compound):
            raise HostXformError("sections requires a block", stmt.loc)
        out: list[A.Stmt] = []
        index = 0
        for child in body.body:
            sec = child
            if isinstance(child, A.PragmaStmt):
                cd = child.directive
                if cd is not None and cd.name == "section":
                    sec = child.body
            out.append(A.If(
                binop("==", call("omp_get_thread_num"),
                      binop("%", intlit(index), call("omp_get_num_threads"))),
                self.transform_stmt(sec),
            ))
            index += 1
        return block(out)

    def _worksharing_for(self, stmt: A.PragmaStmt, d: Directive) -> A.Stmt:
        # collapse(n) linearises exactly like the device side, so the
        # per-thread iteration order matches across host and kernel runs
        loops = collect_collapsed_loops(stmt.body, d)
        count_decls: list[A.Stmt] = []
        for i, info in enumerate(loops):
            count_decls.append(decl_long(
                f"__wsn{i}",
                cast(LONG, rename_idents(info.count, self.renames))))
        total: A.Expr = ident("__wsn0")
        for i in range(1, len(loops)):
            total = binop("*", total, ident(f"__wsn{i}"))
        recon_stmts: list[A.Stmt] = []
        for i, info in enumerate(loops):
            expr: A.Expr = ident("__it")
            for j in range(i + 1, len(loops)):
                expr = binop("/", expr, ident(f"__wsn{j}"))
            if i > 0:
                expr = binop("%", expr, ident(f"__wsn{i}"))
            if info.step != 1:
                expr = binop("*", expr, intlit(info.step))
            expr = binop("+", cast(info.var_type, expr),
                         rename_idents(info.lb, self.renames))
            recon_stmts.append(assign(ident(info.var), expr))
        body = self.transform_stmt(loops[-1].body)
        return block(
            count_decls,
            decl_long("__cnt", total),
            decl_long("__tlo"), decl_long("__thi"), decl_long("__it"),
            callstmt("ort_for_bounds", intlit(0), ident("__cnt"),
                     addr_of(ident("__tlo")), addr_of(ident("__thi"))),
            A.For(
                A.ExprStmt(A.Assign(ident("__it"), ident("__tlo"))),
                binop("<", ident("__it"), ident("__thi")),
                A.Assign(ident("__it"), intlit(1), "+"),
                block(recon_stmts, body),
            ),
        )
