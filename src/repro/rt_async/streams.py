"""Simulated CUDA streams and events (the ``cuStream*``/``cuEvent*`` API).

A stream is a FIFO queue of device operations.  In this reproduction the
*functional* side of every operation still executes immediately, in
program order (the simulator is single-threaded and deterministic); what
a stream queues is the operation's place on the **modelled timeline**.
Each stream carries a ``ready_at`` timestamp — the simulated time at
which everything enqueued on it so far has completed — and each device
*engine* (one compute engine = the single Maxwell SM, one copy engine =
the single DMA path, see :mod:`repro.timing.gpumodel`) carries its own
availability time.  An operation issued at host time *t* therefore starts
at

    ``max(t, stream.ready_at, engine.ready_at)``

which yields FIFO ordering within a stream, no ordering across streams,
and serialization of same-engine work — i.e. copy/compute overlap but no
concurrent kernels, matching the Jetson Nano's hardware.

Default-stream semantics are *legacy* CUDA: work on stream 0 begins only
after all prior work on every stream, and work on a blocking stream
begins only after prior default-stream work.  Streams created with
``NON_BLOCKING`` opt out (like ``CU_STREAM_NON_BLOCKING``).

Events are timeline markers: ``record`` captures the completion time of
the stream's currently enqueued work; ``stream_wait_event`` makes a
stream's next operation start no earlier than that mark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.prof.activity import WaitActivity
from repro.timing.clock import VirtualClock
from repro.timing.gpumodel import ENGINES, engine_of

#: stream creation flag: do not synchronise with the legacy default stream
NON_BLOCKING = 0x1

DEFAULT_STREAM = 0


class StreamError(Exception):
    """Unknown/destroyed stream or event handle, or misuse of the API."""


@dataclass
class StreamOp:
    """One operation retired on a stream (bookkeeping for tests/reports)."""

    kind: str
    start: float
    end: float

    @property
    def seconds(self) -> float:
        return self.end - self.start


@dataclass
class CudaStream:
    handle: int
    flags: int = 0
    #: simulated time at which all work enqueued so far completes
    ready_at: float = 0.0
    #: retired operations in FIFO (enqueue) order
    ops: list[StreamOp] = field(default_factory=list)

    @property
    def non_blocking(self) -> bool:
        return bool(self.flags & NON_BLOCKING)


@dataclass
class CudaEvent:
    handle: int
    recorded: bool = False
    #: completion time of the stream work the event marks
    timestamp: float = 0.0


class StreamTable:
    """Per-driver stream/event state plus the device engine queues.

    ``recorder`` is an optional :class:`repro.prof.activity
    .ActivityRecorder`: when set, cross-stream waits that actually delay a
    stream emit a ``stream_wait`` activity spanning the induced stall —
    information invisible at the driver-call level, where a wait is
    instantaneous."""

    def __init__(self, clock: VirtualClock, recorder=None,
                 engine_lanes: dict[str, int] | None = None):
        self.clock = clock
        self.recorder = recorder
        self.streams: dict[int, CudaStream] = {
            DEFAULT_STREAM: CudaStream(DEFAULT_STREAM)
        }
        self.events: dict[int, CudaEvent] = {}
        self._stream_handles = itertools.count(1)
        self._event_handles = itertools.count(1)
        #: per-engine availability *lanes*: hardware with N-deep kernel
        #: queues (device.concurrent_kernels) or multiple copy engines
        #: exposes N lanes per engine; an operation takes the earliest-free
        #: lane.  One lane per engine reproduces the classic Jetson
        #: behaviour exactly (same max(), same assignment).
        lanes = engine_lanes or {}
        self._engine_ready: dict[str, list[float]] = {
            e: [0.0] * max(1, int(lanes.get(e, 1))) for e in ENGINES
        }
        #: latest completion time of any *destroyed* stream's pending work:
        #: cuStreamDestroy on a busy stream drains it first (CUDA semantics),
        #: so that work still bounds device-wide synchronisation.
        self._drained_at = 0.0

    # -- streams ---------------------------------------------------------------
    def create(self, flags: int = 0) -> int:
        handle = next(self._stream_handles)
        self.streams[handle] = CudaStream(handle, flags)
        return handle

    def destroy(self, handle: int) -> None:
        if handle == DEFAULT_STREAM:
            raise StreamError("the default stream cannot be destroyed")
        stream = self.streams.pop(handle, None)
        if stream is None:
            raise StreamError(f"unknown stream handle {handle}")
        # CUDA semantics: destroying a stream with pending work does not
        # cancel the work — the handle is released immediately and the
        # device drains the queue.  Keep the drain horizon so ctx-wide
        # synchronisation still waits for it.
        self._drained_at = max(self._drained_at, stream.ready_at)

    def get(self, handle: int) -> CudaStream:
        stream = self.streams.get(handle)
        if stream is None:
            raise StreamError(
                f"unknown stream handle {handle} (create streams with "
                "cuStreamCreate; the default stream is 0)"
            )
        return stream

    def completion_time(self, handle: int) -> float:
        return self.get(handle).ready_at

    def all_done_at(self) -> float:
        """Time at which every stream's enqueued work has completed,
        including work still draining on destroyed streams."""
        return max(self._drained_at,
                   max(s.ready_at for s in self.streams.values()))

    # -- scheduling ---------------------------------------------------------------
    def schedule(self, handle: int, kind: str, cost: float) -> tuple[float, float]:
        """Place one operation of the given event-log ``kind`` on a stream.

        Returns the modelled ``(start, end)`` interval and advances the
        stream's and the occupied engine's availability.  The host clock is
        *not* advanced — completion is observed through the synchronisation
        calls."""
        if cost < 0:
            raise StreamError(f"negative operation cost {cost}")
        stream = self.get(handle)
        start = max(self.clock.now(), stream.ready_at)
        engine = engine_of(kind)
        lane = -1
        if engine is not None:
            lanes = self._engine_ready[engine]
            lane = min(range(len(lanes)), key=lanes.__getitem__)
            start = max(start, lanes[lane])
        # legacy default-stream synchronisation
        if handle == DEFAULT_STREAM:
            start = max(start, self.all_done_at())
        elif not stream.non_blocking:
            start = max(start, self.streams[DEFAULT_STREAM].ready_at)
        end = start + cost
        stream.ready_at = end
        if engine is not None:
            self._engine_ready[engine][lane] = end
        stream.ops.append(StreamOp(kind, start, end))
        return start, end

    def occupy_engine(self, engine: str, until: float) -> None:
        """Push an engine lane's availability to ``until`` without placing
        an operation on any stream (used for peer copies: the remote end
        of a ``cuMemcpyPeer`` occupies one of that device's DMA paths
        too).  The earliest-free lane takes the hit."""
        if engine not in self._engine_ready:
            raise StreamError(f"unknown engine {engine!r}")
        lanes = self._engine_ready[engine]
        lane = min(range(len(lanes)), key=lanes.__getitem__)
        if until > lanes[lane]:
            lanes[lane] = until

    # -- events ---------------------------------------------------------------
    def create_event(self) -> int:
        handle = next(self._event_handles)
        self.events[handle] = CudaEvent(handle)
        return handle

    def destroy_event(self, handle: int) -> None:
        if self.events.pop(handle, None) is None:
            raise StreamError(f"unknown event handle {handle}")

    def get_event(self, handle: int) -> CudaEvent:
        event = self.events.get(handle)
        if event is None:
            raise StreamError(f"unknown event handle {handle}")
        return event

    def record(self, event_handle: int, stream_handle: int) -> CudaEvent:
        event = self.get_event(event_handle)
        stream = self.get(stream_handle)
        event.recorded = True
        event.timestamp = (self.all_done_at()
                           if stream_handle == DEFAULT_STREAM
                           else stream.ready_at)
        return event

    def stream_wait_event(self, stream_handle: int, event_handle: int) -> None:
        """All subsequent work on the stream starts no earlier than the
        recorded mark (``cuStreamWaitEvent``: a device-side wait, the host
        clock does not move)."""
        event = self.get_event(event_handle)
        stream = self.get(stream_handle)
        if not event.recorded:
            # CUDA treats waiting on an unrecorded event as a no-op
            return
        if event.timestamp > stream.ready_at:
            if self.recorder is not None:
                self.recorder.emit(WaitActivity(
                    event=event_handle, stream=stream_handle,
                    t_start=stream.ready_at, t_end=event.timestamp,
                ))
            stream.ready_at = event.timestamp

    def elapsed_ms(self, start_handle: int, end_handle: int) -> float:
        start = self.get_event(start_handle)
        end = self.get_event(end_handle)
        if not (start.recorded and end.recorded):
            raise StreamError("cuEventElapsedTime on an unrecorded event")
        return (end.timestamp - start.timestamp) * 1e3
