"""Depend-aware offload task graph (OpenMP ``target nowait`` + ``depend``).

OpenMP task dependences are keyed on *storage locations*: the list items
of ``depend(in/out/inout: ...)`` clauses.  The host runtime registers each
deferred target region as an :class:`OffloadTask` whose dependence
addresses are the host base addresses of the listed variables, and the
graph derives edges with the classic last-writer/readers bookkeeping:

* ``in``     — the task reads the location: it depends on the last
  ``out``/``inout`` task for that address (flow dependence);
* ``out``/``inout`` — the task writes the location: it depends on the
  last writer *and* every reader registered since (output and anti
  dependences), and it becomes the new last writer.

Submission order is program order, so automatically derived edges always
point from an earlier task to a later one and the graph is acyclic by
construction.  Explicit edges (:meth:`TaskGraph.add_edge`) are checked —
a contradictory chain raises :class:`DependenceCycleError` naming the
cycle.

:class:`StreamPoolScheduler` maps tasks onto a small pool of CUDA streams
(:mod:`repro.rt_async.streams` via the simulated driver): a task whose
only unmet ordering constraint is the tail of some stream inherits that
stream (FIFO order provides the dependence for free); otherwise it takes
the next pool stream round-robin and the scheduler inserts
``cuStreamWaitEvent`` edges for every cross-stream predecessor.
``taskwait`` joins the whole graph: the host clock advances to the
completion of every stream and the graph resets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.cuda.errors import CudaError
from repro.prof.activity import TaskActivity

#: dependence-type codes (what the code generator passes to ort_task_dep)
DEP_IN = 1
DEP_OUT = 2
DEP_INOUT = 3

DEP_CODES = {"in": DEP_IN, "out": DEP_OUT, "inout": DEP_INOUT}
DEP_NAMES = {v: k for k, v in DEP_CODES.items()}


class TaskGraphError(Exception):
    """Malformed dependence information."""


class DependenceCycleError(TaskGraphError):
    """A chain of dependences that contradicts itself (a cycle)."""


class OffloadTaskError(TaskGraphError):
    """One or more nowait tasks failed; raised at the joining ``taskwait``
    (OpenMP: unhandled errors in a deferred task surface at the next task
    scheduling point that joins it)."""

    def __init__(self, failed: list["OffloadTask"], cancelled: int = 0):
        self.failed = list(failed)
        self.cancelled = cancelled
        names = ", ".join(f"{t.tid}:{t.label!r}" for t in self.failed)
        causes = "; ".join(str(t.error) for t in self.failed if t.error)
        msg = f"{len(self.failed)} offload task(s) failed ({names})"
        if cancelled:
            msg += f", {cancelled} dependent task(s) cancelled"
        if causes:
            msg += f": {causes}"
        super().__init__(msg)


@dataclass
class OffloadTask:
    tid: int
    label: str
    #: (dep code, host address) pairs as declared on the construct
    deps: tuple[tuple[int, int], ...] = ()
    preds: set[int] = field(default_factory=set)
    succs: set[int] = field(default_factory=set)
    #: filled in by the scheduler
    stream: Optional[int] = None
    done_event: Optional[int] = None
    #: device ordinal the task's offloads route to (set by the runtime at
    #: task begin; each device has its own scheduler and stream pool)
    device: int = 0
    state: str = "created"    # created | issued | retired | failed | cancelled
    #: the exception that failed the task (state == "failed")
    error: Optional[Exception] = None

    @property
    def dead(self) -> bool:
        """Failed or cancelled: the task performs no more work and its
        dependents must not run."""
        return self.state in ("failed", "cancelled")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        deps = ", ".join(f"{DEP_NAMES.get(c, c)}:{a:#x}" for c, a in self.deps)
        return f"<task {self.tid} {self.label!r} [{deps}] {self.state}>"


class TaskGraph:
    """Dependence bookkeeping for one task region (one device)."""

    def __init__(self):
        self.tasks: dict[int, OffloadTask] = {}
        self._tids = itertools.count(1)
        #: address -> tid of the last out/inout task
        self._last_writer: dict[int, int] = {}
        #: address -> tids of in tasks since the last writer
        self._readers_since: dict[int, set[int]] = {}

    # -- construction ------------------------------------------------------------
    def add_task(self, label: str,
                 deps: list[tuple[int, int]] = ()) -> OffloadTask:
        """Register a task; edges to earlier tasks are derived from its
        dependence list."""
        for code, _addr in deps:
            if code not in (DEP_IN, DEP_OUT, DEP_INOUT):
                raise TaskGraphError(f"unknown dependence type code {code}")
        task = OffloadTask(next(self._tids), label, tuple(deps))
        preds: set[int] = set()
        for code, addr in deps:
            writer = self._last_writer.get(addr)
            if writer is not None:
                preds.add(writer)
            if code in (DEP_OUT, DEP_INOUT):
                preds |= self._readers_since.get(addr, set())
        preds.discard(task.tid)
        task.preds = {p for p in preds if p in self.tasks}
        self.tasks[task.tid] = task
        for p in task.preds:
            self.tasks[p].succs.add(task.tid)
        # update the location tables *after* edge derivation
        for code, addr in deps:
            if code == DEP_IN:
                self._readers_since.setdefault(addr, set()).add(task.tid)
            else:
                self._last_writer[addr] = task.tid
                self._readers_since[addr] = set()
        return task

    def add_edge(self, pred_tid: int, succ_tid: int) -> None:
        """Add an explicit ordering edge; rejects edges that would make the
        dependence relation contradictory (cyclic)."""
        if pred_tid not in self.tasks or succ_tid not in self.tasks:
            raise TaskGraphError("edge endpoints must be registered tasks")
        if pred_tid == succ_tid:
            raise DependenceCycleError(
                f"task {pred_tid} cannot depend on itself"
            )
        path = self._find_path(succ_tid, pred_tid)
        if path is not None:
            cycle = " -> ".join(str(t) for t in path + [succ_tid])
            raise DependenceCycleError(
                f"contradictory depend chain: adding {pred_tid} -> {succ_tid} "
                f"closes the cycle {cycle}"
            )
        self.tasks[pred_tid].succs.add(succ_tid)
        self.tasks[succ_tid].preds.add(pred_tid)

    def _find_path(self, src: int, dst: int) -> Optional[list[int]]:
        """DFS path src -> dst along succ edges, None if unreachable."""
        stack: list[tuple[int, list[int]]] = [(src, [src])]
        seen: set[int] = set()
        while stack:
            node, path = stack.pop()
            if node == dst:
                return path
            if node in seen:
                continue
            seen.add(node)
            for nxt in self.tasks[node].succs:
                stack.append((nxt, path + [nxt]))
        return None

    # -- state -------------------------------------------------------------------
    def ready_tasks(self) -> list[OffloadTask]:
        """Tasks whose predecessors have all been issued or retired."""
        return [
            t for t in self.tasks.values()
            if t.state == "created" and all(
                self.tasks[p].state in ("issued", "retired")
                for p in t.preds if p in self.tasks
            )
        ]

    def mark_issued(self, tid: int) -> None:
        self.tasks[tid].state = "issued"

    def retire_all(self) -> None:
        for t in self.tasks.values():
            t.state = "retired"

    @property
    def pending(self) -> int:
        return sum(1 for t in self.tasks.values() if t.state != "retired")

    def reset(self) -> None:
        """Forget retired tasks and location history (after a full join
        every dependence is satisfied, so the tables restart empty)."""
        self.tasks = {t.tid: t for t in self.tasks.values()
                      if t.state != "retired"}
        self._last_writer.clear()
        self._readers_since.clear()


class StreamPoolScheduler:
    """Maps offload tasks onto a small pool of driver streams.

    ``driver`` is duck-typed against :class:`repro.cuda.driver.CudaDriver`:
    ``cuStreamCreate/cuStreamSynchronize``, ``cuEventCreate/cuEventRecord/
    cuEventSynchronize`` and ``cuStreamWaitEvent`` are used.  Tasks execute
    functionally at submission (program order); the scheduler's job is the
    *timeline*: stream placement and cross-stream event waits.
    """

    DEFAULT_POOL_STREAMS = 4

    def __init__(self, driver, pool_size: int = DEFAULT_POOL_STREAMS):
        if pool_size < 1:
            raise TaskGraphError("stream pool needs at least one stream")
        self.driver = driver
        #: the driver's activity recorder (None: profiling disabled) —
        #: task lifecycle records land in the same buffer as driver work
        self.prof = getattr(driver, "prof", None)
        self.graph = TaskGraph()
        self.pool: list[int] = [driver.cuStreamCreate()
                                for _ in range(pool_size)]
        self._rr = 0
        #: stream handle -> tid of the task most recently placed on it
        self._stream_tail: dict[int, Optional[int]] = {h: None for h in self.pool}
        #: every completion event this scheduler created (released by
        #: :meth:`shutdown`; a long-lived driver otherwise accumulates
        #: one event-table entry per finished task, forever)
        self._events: list[int] = []

    # -- submission ------------------------------------------------------------
    def begin_task(self, label: str,
                   deps: list[tuple[int, int]] = ()) -> OffloadTask:
        """Create the task, pick its stream and install its cross-stream
        waits.  The caller then performs the task's work on
        ``task.stream`` and calls :meth:`end_task`."""
        task = self.graph.add_task(label, deps)
        # error propagation: a task whose predecessor failed (or was itself
        # cancelled) must not run — OpenMP dependences order *completed*
        # work, and there is nothing correct to order against.
        for p in task.preds:
            if self.graph.tasks[p].dead:
                task.state = "cancelled"
                self._note(task, "cancel")
                self._note_fault("cancel", task,
                                 detail=f"predecessor task {p} failed")
                return task
        stream = None
        for p in task.preds:
            pstream = self.graph.tasks[p].stream
            if pstream is not None and self._stream_tail.get(pstream) == p:
                stream = pstream      # FIFO order covers this dependence
                break
        if stream is None:
            stream = self.pool[self._rr % len(self.pool)]
            self._rr += 1
        for p in task.preds:
            pred = self.graph.tasks[p]
            if pred.stream != stream and pred.done_event is not None:
                self.driver.cuStreamWaitEvent(stream, pred.done_event)
        task.stream = stream
        self._stream_tail[stream] = task.tid
        self._note(task, "begin")
        return task

    def end_task(self, task: OffloadTask) -> None:
        """Record the task's completion event on its stream.  Dead tasks
        (failed or cancelled) record nothing: there is no completion to
        mark, and successors are cancelled rather than ordered."""
        if task.dead:
            return
        event = self.driver.cuEventCreate()
        self.driver.cuEventRecord(event, task.stream)
        task.done_event = event
        self._events.append(event)
        self.graph.mark_issued(task.tid)
        self._note(task, "end")

    def fail_task(self, task: OffloadTask, exc: Exception) -> None:
        """Mark a task failed and cancel its transitive dependents.

        Most cancellation happens lazily in :meth:`begin_task` (successors
        are usually submitted *after* the failure); this walk catches
        already-registered dependents."""
        task.state = "failed"
        task.error = exc
        self._note(task, "fail")
        self._note_fault("task_fail", task, detail=str(exc))
        stack = list(task.succs)
        while stack:
            tid = stack.pop()
            succ = self.graph.tasks.get(tid)
            if succ is None or succ.dead or succ.state == "retired":
                continue
            succ.state = "cancelled"
            self._note(succ, "cancel")
            self._note_fault("cancel", succ,
                             detail=f"predecessor task {task.tid} failed")
            stack.extend(succ.succs)

    def sync_task(self, task: OffloadTask) -> None:
        """Block the host until this one task's work completes (a ``target
        depend(...)`` *without* nowait: an undeferred task that still
        orders against the graph)."""
        if task.dead:
            return
        if task.done_event is not None:
            self.driver.cuEventSynchronize(task.done_event)
        elif task.stream is not None:
            self.driver.cuStreamSynchronize(task.stream)
        self._note(task, "sync")

    def _note(self, task: Optional[OffloadTask], op: str) -> None:
        """Emit one task-lifecycle activity (no-op when profiling is off)."""
        if self.prof is None:
            return
        now = self.driver.clock.now()
        self.prof.emit(TaskActivity(
            op=op, tid=task.tid if task else 0,
            label=task.label if task else "",
            deps=tuple(task.deps) if task else (),
            preds=tuple(sorted(task.preds)) if task else (),
            stream=task.stream if task else None,
            t_start=now, t_end=now,
        ))

    def _note_fault(self, op: str, task: OffloadTask, detail: str = "") -> None:
        """Mirror failure/cancellation into the driver's fault log (the
        same sink the injector and the recovery machinery report to)."""
        faultlog = getattr(self.driver, "faultlog", None)
        if faultlog is not None:
            faultlog.note(op, api=task.label, detail=detail)

    # -- joins -------------------------------------------------------------------
    def taskwait(self) -> float:
        """Join every submitted task (``taskwait`` / implicit barrier):
        advances the host clock to the completion of all pool streams and
        resets the graph.  Returns the join time.

        If any task failed, the failure surfaces *here* as an
        :class:`OffloadTaskError` — after the streams are drained and the
        graph is reset, so the runtime is reusable afterwards."""
        t = 0.0
        for handle in self.pool:
            t = max(t, self.driver.cuStreamSynchronize(handle))
        failed = [task for task in self.graph.tasks.values()
                  if task.state == "failed"]
        cancelled = sum(1 for task in self.graph.tasks.values()
                        if task.state == "cancelled")
        self.graph.retire_all()
        self.graph.reset()
        self._note(None, "taskwait")
        if failed:
            raise OffloadTaskError(failed, cancelled)
        return t

    @property
    def pending(self) -> int:
        return self.graph.pending

    def release_events(self) -> int:
        """Destroy every completion event recorded so far; returns how
        many were released.  Only valid after a join (taskwait) — a
        pending task's ``done_event`` must stay live until synchronised.
        A long-lived serving scheduler calls this between drains so the
        shared driver's event table stays bounded."""
        released = 0
        for event in self._events:
            try:
                self.driver.cuEventDestroy(event)
                released += 1
            except CudaError:
                pass
        self._events.clear()
        return released

    def shutdown(self) -> None:
        """Release the pool: drain each pool stream and destroy its
        handle.  Per-request schedulers in a long-lived serving process
        must not accumulate stream handles (and their drain horizons) in
        a shared driver's stream table; standalone runs never bother —
        process teardown reclaims everything.  Safe on a lost device:
        the driver's errors are absorbed, the handles are forgotten."""
        for handle in self.pool:
            try:
                self.driver.cuStreamSynchronize(handle)
                self.driver.cuStreamDestroy(handle)
            except CudaError:
                pass
        self.release_events()
        self.pool.clear()
        self._stream_tail.clear()
