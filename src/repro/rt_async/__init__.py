"""Asynchronous offload subsystem: simulated CUDA streams/events plus the
depend-aware ``target nowait`` task graph (see DESIGN.md §"Asynchronous
offloading")."""

from repro.rt_async.streams import (
    DEFAULT_STREAM, NON_BLOCKING, CudaEvent, CudaStream, StreamError,
    StreamOp, StreamTable,
)
from repro.rt_async.taskgraph import (
    DEP_CODES, DEP_IN, DEP_INOUT, DEP_NAMES, DEP_OUT, DependenceCycleError,
    OffloadTask, OffloadTaskError, StreamPoolScheduler, TaskGraph,
    TaskGraphError,
)

__all__ = [
    "CudaEvent", "CudaStream", "DEFAULT_STREAM", "DEP_CODES", "DEP_IN",
    "DEP_INOUT", "DEP_NAMES", "DEP_OUT", "DependenceCycleError",
    "NON_BLOCKING", "OffloadTask", "OffloadTaskError", "StreamError",
    "StreamOp", "StreamPoolScheduler", "StreamTable", "TaskGraph",
    "TaskGraphError",
]
