"""OpenMP ``barrier`` on the device (paper §4.2.2).

"An encountered barrier construct is translated to a bar.sync PTX
instruction, allowing a total of 16 barriers to be utilized by a single
block.  A restriction of the bar.sync instruction is that it can only
accept ... a number of threads that is a multiple of the warp size (W=32).
If a subset of threads participating in a parallel region contains N
threads, and N does not satisfy this restriction, cudadev performs a
barrier synchronization for X = W*ceil(N/W) threads."

``cudadev_barrier`` synchronises the threads of the *current binding
region*: in combined mode that is the whole block; in master/worker mode
the N participating worker threads (rounded up to X).  CUDA skips warps
whose threads did not call into the barrier, so the X - N inactive
threads never block release — the engine models that by counting warp
arrivals (an arriving warp contributes 32 threads regardless of how many
of its lanes are active).
"""

from __future__ import annotations

from repro.cuda.sim.warp import WARP_SIZE, WarpExec
from repro.devrt.state import B_OMP, block_state


def round_up_threads(n: int, warp_size: int = WARP_SIZE) -> int:
    """The paper's X = W * ceil(N / W) rule."""
    if n <= 0:
        return warp_size
    return warp_size * ((n + warp_size - 1) // warp_size)


def cudadev_barrier(warp: WarpExec, mask, args):
    devrt = block_state(warp)
    if devrt["mode"] == "mw" and devrt["mw"]["in_region"]:
        n = devrt["mw"]["nthreads"]
    else:
        n = devrt["nthreads_block"]
    yield ("bar", B_OMP, round_up_threads(n))
    return None
