"""The master/worker scheme for standalone parallel regions (paper §3.2).

Kernels that contain non-combined ``parallel`` constructs launch with 128
threads: warp 0 is the *master warp* (only thread 0 survives; the other 31
return immediately), warps 1-3 are *worker warps* holding 96 worker
threads.  Workers sit in an infinite loop inside ``cudadev_workerfunc``:

    loop:
        bar.sync B1, 128          # wait for work (or exit)
        if exit flag: return
        if my id < nthreads: run the registered thread function
        bar.sync B2, W*ceil(N/W)  # participants only
        bar.sync B1, 128          # region end

The master thread executes the sequential parts and, per parallel region,
``cudadev_register_parallel``: it publishes (function id, argument block
pointer, nthreads), arrives at B1 to wake the workers, then arrives at the
closing B1 to wait for region completion.  ``cudadev_exit_target`` raises
the exit flag and performs the final B1.
"""

from __future__ import annotations

import numpy as np

from repro.cuda.sim.warp import WARP_SIZE, WarpExec
from repro.devrt.state import (
    B1, B2, MW_BLOCK_THREADS, MW_WORKERS, block_state, pure, uniform,
)


@pure
def cudadev_target_init(warp: WarpExec, mask, args):
    """Entry call emitted at the top of every generated kernel: selects the
    execution mode (0 = combined construct, 1 = master/worker)."""
    devrt = block_state(warp)
    mode = uniform(args[0], mask)
    devrt["mode"] = "mw" if mode == 1 else "combined"
    return None


@pure
def cudadev_in_masterwarp(warp: WarpExec, mask, args):
    thrid = np.broadcast_to(np.asarray(args[0]), (WARP_SIZE,))
    return (thrid < WARP_SIZE).astype(np.int32)


@pure
def cudadev_is_masterthr(warp: WarpExec, mask, args):
    thrid = np.broadcast_to(np.asarray(args[0]), (WARP_SIZE,))
    return (thrid == 0).astype(np.int32)


@pure
def cudadev_getaddr(warp: WarpExec, mask, args):
    """Identity on device addresses (the generated code routes global
    pointers through this for uniformity with shared-memory pushes)."""
    return np.broadcast_to(np.asarray(args[0], dtype=np.uint64), (WARP_SIZE,)).copy()


def cudadev_register_parallel(warp: WarpExec, mask, args):
    """Master-side: publish a parallel region and run it to completion."""
    devrt = block_state(warp)
    fid = int(uniform(args[0], mask))
    args_addr = int(uniform(args[1], mask))
    nthreads = int(uniform(args[2], mask))
    if nthreads <= 0 or nthreads > MW_WORKERS:
        nthreads = MW_WORKERS
    mw = devrt["mw"]
    mw["registered"] = (fid, args_addr, nthreads)
    mw["nthreads"] = nthreads
    yield ("bar", B1, MW_BLOCK_THREADS)   # wake the workers
    yield ("bar", B1, MW_BLOCK_THREADS)   # wait for region completion
    mw["registered"] = None
    return None


def cudadev_workerfunc(warp: WarpExec, mask, args):
    """Worker-side infinite loop (threads of warps 1..3)."""
    devrt = block_state(warp)
    mw = devrt["mw"]
    my_id = warp.lane_linear - WARP_SIZE   # worker thread ids 0..95
    while True:
        yield ("bar", B1, MW_BLOCK_THREADS)
        if mw["exit"]:
            return None
        reg = mw["registered"]
        if reg is None:      # spurious wake (defensive; cannot normally happen)
            continue
        fid, args_addr, nthreads = reg
        participate = mask & (my_id >= 0) & (my_id < nthreads)
        if participate.any():
            mw["in_region"] = True
            arg_vec = np.full(WARP_SIZE, args_addr, dtype=np.uint64)
            yield from warp.call_subfunction(fid, [arg_vec], participate)
            mw["in_region"] = False
            rounded = WARP_SIZE * ((nthreads + WARP_SIZE - 1) // WARP_SIZE)
            yield ("bar", B2, rounded)
        yield ("bar", B1, MW_BLOCK_THREADS)


def cudadev_exit_target(warp: WarpExec, mask, args):
    """Master-side: terminate all worker warps at the end of the target
    region."""
    devrt = block_state(warp)
    devrt["mw"]["exit"] = True
    yield ("bar", B1, MW_BLOCK_THREADS)
    return None
