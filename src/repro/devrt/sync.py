"""Locks and ``critical`` regions (paper §4.2.2).

"We implement locks through busy-spinning with atomic compare and swap
(CAS) instructions on a global control variable; it gets the value of 1 by
the thread that acquires the lock, while the rest of the threads wait
until the variable becomes 0 and the lock is released."

Lockstep warps make the naive acquire/body/release sequence deadlock on
pre-Volta hardware (one lane would hold the lock while its warp spins), so
the code OMPi generates around ``critical`` is the classic CAS-win retry
loop, serialising the region across lanes *and* warps::

    int _done = 0;
    while (!_done) {
        if (cudadev_trylock(id) == 0) {   // one lane wins the CAS
            ...critical body...           // executes with only that lane
            cudadev_unlock(id);
            _done = 1;
        }
    }

``cudadev_trylock`` performs one CAS attempt per active lane (lane-serial,
like hardware atomics), so exactly one lane at a time wins; the retry loop
yields to the warp scheduler between attempts, so warps contend fairly.
``cudadev_lock`` (blocking) is also provided for contexts where a single
active lane is guaranteed (master-thread bookkeeping).
"""

from __future__ import annotations

import numpy as np

from repro.cuda.sim.warp import WARP_SIZE, WarpExec
from repro.devrt.state import pure, uniform


def _lock_cell(warp: WarpExec, lock_id: int) -> int:
    """Address of the lock's global control variable (lazily allocated)."""
    engine = warp.engine
    cells = engine.__dict__.setdefault("_devrt_lock_cells", {})
    addr = cells.get(lock_id)
    if addr is None:
        addr = engine.gmem.alloc(4, align=4)
        engine.gmem.store(addr, np.int32, 0)
        cells[lock_id] = addr
    return addr


@pure
def cudadev_trylock(warp: WarpExec, mask, args):
    """One CAS attempt per active lane, in lane order; returns the old lock
    value per lane (0 = this lane acquired)."""
    lock_id = int(uniform(args[0], mask))
    addr = _lock_cell(warp, lock_id)
    gmem = warp.engine.gmem
    olds = np.ones(WARP_SIZE, dtype=np.int32)
    for lane in np.flatnonzero(mask):
        warp.engine.stats.atomics += 1
        old = int(gmem.load(addr, np.int32))
        olds[lane] = old
        if old == 0:
            gmem.store(addr, np.int32, 1)
    return olds


def cudadev_lock(warp: WarpExec, mask, args):
    """Blocking acquire — valid only when a single lane is active (the
    master thread); raises otherwise to catch misgenerated code."""
    if int(mask.sum()) != 1:
        raise RuntimeError(
            "cudadev_lock with multiple active lanes would deadlock a "
            "lockstep warp; the compiler must emit the trylock pattern"
        )
    lock_id = int(uniform(args[0], mask))
    addr = _lock_cell(warp, lock_id)
    gmem = warp.engine.gmem
    while True:
        warp.engine.stats.atomics += 1
        if int(gmem.load(addr, np.int32)) == 0:
            gmem.store(addr, np.int32, 1)
            return None
        yield ("spin",)


@pure
def cudadev_unlock(warp: WarpExec, mask, args):
    lock_id = int(uniform(args[0], mask))
    addr = _lock_cell(warp, lock_id)
    warp.engine.gmem.store(addr, np.int32, 0)
    return None
