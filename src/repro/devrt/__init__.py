"""cudadev device runtime library (the *device part* of the paper's module).

This package implements, as engine intrinsics, every device-side facility
paper §4.2.2 lists:

* parallel regions — both the master/worker scheme for standalone
  ``parallel`` constructs (:mod:`repro.devrt.masterworker`) and the direct
  mapping used by combined constructs;
* worksharing — ``for`` with static/dynamic/guided schedules and the
  two-phase distribute+for chunking of §3.1 (:mod:`repro.devrt.schedules`),
  ``sections`` via a lock+counter with warp-spread assignment
  (:mod:`repro.devrt.sections`), ``single`` via if-master;
* synchronization — CAS busy-wait locks for ``critical``
  (:mod:`repro.devrt.sync`) and named barriers with the W*ceil(N/W)
  round-up rule (:mod:`repro.devrt.barriers`);
* the shared-memory stack (``cudadev_push_shmem``/``cudadev_pop_shmem``,
  :mod:`repro.devrt.shmem`);
* the device-side ``omp_*`` API (:mod:`repro.devrt.api`).

On the real board this library is a CUDA object linked with each kernel
(at build time in cubin mode, at JIT time in ptx mode); here it is the
intrinsic table handed to the functional engine — the driver simulator
performs the same "linking" step by attaching the table at module load.
"""

from repro.devrt.api import INTRINSIC_SIGS, build_intrinsics

__all__ = ["INTRINSIC_SIGS", "build_intrinsics"]
