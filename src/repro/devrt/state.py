"""Per-block device-runtime state and shared helpers for intrinsics.

Intrinsics are generator functions ``fn(warp, mask, args)`` that may yield
scheduler events (barriers, spins) and return a per-lane numpy array (or
None).  The per-block state lives in ``warp.block.devrt`` — on the real
GPU this is a control area at the base of shared memory; keeping it as a
Python dict is equivalent because all warps of a block share it.
"""

from __future__ import annotations

import numpy as np

from repro.cuda.sim.warp import WARP_SIZE, WarpExec

#: Named-barrier ids reserved by the runtime (paper §3.2): B1 synchronises
#: the master thread with all workers, B2 only the region participants.
B1 = 1
B2 = 2
#: barrier id used by explicit ``#pragma omp barrier`` inside regions
B_OMP = 3

#: number of threads every master/worker kernel is launched with (§4.2.2:
#: "ompi initiates kernels with a fixed number of 128 threads")
MW_BLOCK_THREADS = 128
#: worker threads available to parallel regions (128 - the master warp)
MW_WORKERS = 96


def block_state(warp: WarpExec) -> dict:
    """Lazily initialised per-block runtime state."""
    devrt = warp.block.devrt
    if "init" not in devrt:
        bx, by, bz = warp.block.block_dim
        devrt.update(
            init=True,
            mode="combined",
            nthreads_block=bx * by * bz,
            shmem_sp=warp.kernel.smem_static,
            mw={
                "registered": None,     # (fid, args_addr, nthreads)
                "exit": False,
                "in_region": False,
                "nthreads": 1,
            },
            sched={},                   # loop_id -> schedule state
            sections={},                # loop_id -> section state
            locks={},                   # lock_id -> 0/1
        )
    return devrt


def region_threads(warp: WarpExec) -> int:
    """Number of threads in the current parallel binding region."""
    devrt = block_state(warp)
    if devrt["mode"] == "mw":
        mw = devrt["mw"]
        return mw["nthreads"] if mw["in_region"] else 1
    return devrt["nthreads_block"]


def region_thread_ids(warp: WarpExec) -> np.ndarray:
    """Per-lane OpenMP thread numbers within the binding region."""
    devrt = block_state(warp)
    if devrt["mode"] == "mw":
        # master is thread 0; workers (linear tid 32..127) are 0..95 in-region
        if devrt["mw"]["in_region"]:
            return np.maximum(warp.lane_linear - WARP_SIZE, 0).astype(np.int32)
        return np.zeros(WARP_SIZE, dtype=np.int32)
    return warp.lane_linear.astype(np.int32)


def uniform(value, mask: np.ndarray):
    """Extract the first active lane's value from a possibly per-lane arg."""
    arr = np.asarray(value)
    if arr.ndim == 0:
        return arr.item()
    return arr[int(np.argmax(mask))].item()


def pure(fn):
    """Wrap a non-suspending intrinsic as a generator."""

    def gen(warp, mask, args):
        return fn(warp, mask, args)
        yield  # pragma: no cover - makes this a generator function

    gen.__name__ = fn.__name__
    gen.__doc__ = fn.__doc__
    return gen


def store_out(warp: WarpExec, addr_arg, dtype, values, mask: np.ndarray) -> None:
    """Store per-lane values through a per-lane pointer argument."""
    warp.engine.mem_store(warp, np.asarray(addr_arg, dtype=np.uint64),
                          np.dtype(dtype), values, mask)
