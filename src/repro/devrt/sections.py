"""``sections`` worksharing (paper §4.2.2).

"sections directives are implemented using locks; the library keeps track
of the remaining sections using a counter initialized to the number of
sections.  The thread that reaches a section first acquires a lock and
reduces the counter until the latter becomes 0.  To avoid warp divergence,
each section is assigned to threads from different warps."

The generated code pattern is::

    cudadev_sections_init(sid, NSECTIONS);
    int _s;
    while ((_s = cudadev_next_section(sid)) >= 0) {
        if (_s == 0) { ...section 0... }
        else if (_s == 1) { ...section 1... }
    }
    cudadev_barrier();   // unless nowait

Warp-spread assignment: at most one section is handed out per warp per
call (to the warp's first active lane), so two sections never execute
divergently inside the same warp — a warp whose leader got section ``k``
loops and may pick up another once faster warps have had their chance.
"""

from __future__ import annotations

import numpy as np

from repro.cuda.sim.warp import WARP_SIZE, WarpExec
from repro.devrt.state import block_state, pure, uniform


@pure
def cudadev_sections_init(warp: WarpExec, mask, args):
    """Initialise the sections counter.  Every participating warp calls
    this, but only the first call of a construct *instance* resets the
    counter; the instance ends (allowing re-execution of the construct,
    e.g. inside an outer sequential loop) once every warp of the block has
    passed through init."""
    devrt = block_state(warp)
    sid = int(uniform(args[0], mask))
    nsections = int(uniform(args[1], mask))
    nwarps = (devrt["nthreads_block"] + WARP_SIZE - 1) // WARP_SIZE
    state = devrt["sections"].get(sid)
    if state is not None and warp.warp_index not in state["init_warps"]:
        # same construct instance: just record this warp's entry
        state["init_warps"].add(warp.warp_index)
        return None
    # first warp of a (new) instance resets the counter
    devrt["sections"][sid] = {
        "remaining": nsections,
        "next": 0,
        "nsections": nsections,
        "per_warp": {},
        "init_warps": {warp.warp_index},
        "reusable": False,
    }
    return None


@pure
def cudadev_next_section(warp: WarpExec, mask, args):
    """Hand the next unexecuted section to this warp's leader lane; every
    other lane (and every call after exhaustion) receives -1.

    The lock+counter of the real library is subsumed by the cooperative
    scheduler: an intrinsic runs to completion without preemption, so the
    counter update is atomic by construction.
    """
    devrt = block_state(warp)
    sid = int(uniform(args[0], mask))
    state = devrt["sections"][sid]
    result = np.full(WARP_SIZE, -1, dtype=np.int32)
    if state["remaining"] <= 0:
        return result
    leader = int(np.argmax(mask))
    result[leader] = state["next"]
    state["next"] += 1
    state["remaining"] -= 1
    state["per_warp"][warp.warp_index] = state["per_warp"].get(warp.warp_index, 0) + 1
    return result
