"""The shared-memory stack (paper §3.2).

Variables that are shared between the master thread and the workers of a
parallel region are *pushed* onto a stack living in the block's shared
memory; ``cudadev_push_shmem`` copies the master's private value in and
returns the shared address, ``cudadev_pop_shmem`` copies the (possibly
updated) value back out and deallocates.
"""

from __future__ import annotations

import numpy as np

from repro.cuda.ptx.lower import SHARED_WINDOW_BASE
from repro.cuda.sim.warp import WarpExec
from repro.devrt.state import block_state, pure, uniform


class ShmemStackError(Exception):
    """Shared-memory stack overflow/underflow."""


def _align8(n: int) -> int:
    return (n + 7) & ~7


@pure
def cudadev_push_shmem(warp: WarpExec, mask, args):
    """Push ``size`` bytes from the (master's) private copy at ``src`` onto
    the shared-memory stack; returns the shared address."""
    devrt = block_state(warp)
    src = int(uniform(args[0], mask))
    size = int(uniform(args[1], mask))
    sp = _align8(devrt["shmem_sp"])
    smem = warp.block.smem
    if sp + size > smem.capacity:
        raise ShmemStackError(
            f"shared-memory stack overflow: sp={sp}, push of {size} bytes, "
            f"capacity {smem.capacity}"
        )
    src_space = warp.engine.resolve_space(warp, src)
    smem.copy_in(SHARED_WINDOW_BASE + sp, src_space.copy_out(src, size))
    devrt["shmem_sp"] = sp + size
    devrt.setdefault("shmem_frames", []).append((sp, size, src))
    return np.full(warp.lane_linear.shape, SHARED_WINDOW_BASE + sp, dtype=np.uint64)


@pure
def cudadev_pop_shmem(warp: WarpExec, mask, args):
    """Pop the top stack entry, copying its value back to the private copy
    at ``dst`` (so the master observes updates made inside the region)."""
    devrt = block_state(warp)
    dst = int(uniform(args[0], mask))
    size = int(uniform(args[1], mask))
    frames = devrt.get("shmem_frames") or []
    if not frames:
        raise ShmemStackError("shared-memory stack underflow")
    sp, pushed_size, _src = frames.pop()
    if pushed_size != size:
        raise ShmemStackError(
            f"mismatched pop: pushed {pushed_size} bytes, popping {size}"
        )
    dst_space = warp.engine.resolve_space(warp, dst)
    dst_space.copy_in(dst, warp.block.smem.copy_out(SHARED_WINDOW_BASE + sp, size))
    devrt["shmem_sp"] = sp
    return None
