"""Device-side ``omp_*`` API and the intrinsic/signature tables.

``INTRINSIC_SIGS`` is consumed by the nvcc-simulator's lowering pass (for
argument conversions) and ``build_intrinsics`` produces the callable table
the functional engine links against a kernel — the moral equivalent of
linking the cudadev device library (at build time for cubins, at JIT time
for PTX, paper §§3.3, 4.2.1).
"""

from __future__ import annotations

import numpy as np

from repro.cuda.sim.warp import WARP_SIZE, WarpExec
from repro.devrt import barriers, masterworker, schedules, sections, shmem, shuffle, sync
from repro.devrt.atomics import ATOMIC_RED_INTRINSICS
from repro.devrt.state import block_state, pure, region_thread_ids, region_threads


@pure
def omp_get_thread_num(warp: WarpExec, mask, args):
    return region_thread_ids(warp)


@pure
def omp_get_num_threads(warp: WarpExec, mask, args):
    return np.full(WARP_SIZE, region_threads(warp), dtype=np.int32)


@pure
def omp_get_team_num(warp: WarpExec, mask, args):
    gx, gy, _gz = warp.block.grid_dim
    cx, cy, cz = warp.block.block_idx
    return np.full(WARP_SIZE, cx + gx * (cy + gy * cz), dtype=np.int32)


@pure
def omp_get_num_teams(warp: WarpExec, mask, args):
    gx, gy, gz = warp.block.grid_dim
    return np.full(WARP_SIZE, gx * gy * gz, dtype=np.int32)


@pure
def omp_is_initial_device(warp: WarpExec, mask, args):
    return np.zeros(WARP_SIZE, dtype=np.int32)


@pure
def omp_get_max_threads(warp: WarpExec, mask, args):
    return np.full(WARP_SIZE, block_state(warp)["nthreads_block"], dtype=np.int32)


#: name -> ((parameter dtypes...), return dtype or None); "any" skips the
#: lowering-time conversion for that argument.
INTRINSIC_SIGS: dict[str, tuple[tuple[str, ...], str | None]] = {
    # omp device API
    "omp_get_thread_num": ((), "s32"),
    "omp_get_num_threads": ((), "s32"),
    "omp_get_team_num": ((), "s32"),
    "omp_get_num_teams": ((), "s32"),
    "omp_get_max_threads": ((), "s32"),
    "omp_is_initial_device": ((), "s32"),
    # master/worker scheme
    "cudadev_target_init": (("s32",), None),
    "cudadev_in_masterwarp": (("s32",), "s32"),
    "cudadev_is_masterthr": (("s32",), "s32"),
    "cudadev_register_parallel": (("s32", "u64", "s32"), None),
    "cudadev_workerfunc": (("s32",), None),
    "cudadev_exit_target": ((), None),
    "cudadev_getaddr": (("u64",), "u64"),
    # shared-memory stack
    "cudadev_push_shmem": (("u64", "s64"), "u64"),
    "cudadev_pop_shmem": (("u64", "s64"), None),
    # worksharing
    "cudadev_get_distribute_chunk": (("s64", "s64", "u64", "u64"), None),
    "cudadev_get_distribute_chunk_dim": (("s32", "s64", "s64", "u64", "u64"), None),
    "cudadev_get_static_chunk_dim": (("s32", "s32", "s64", "s64", "s64", "u64", "u64"), "s32"),
    "cudadev_get_static_chunk": (("s32", "s64", "s64", "s64", "u64", "u64"), "s32"),
    "cudadev_get_dynamic_chunk": (("s32", "s64", "s64", "s64", "u64", "u64"), "s32"),
    "cudadev_get_guided_chunk": (("s32", "s64", "s64", "s64", "u64", "u64"), "s32"),
    "cudadev_sections_init": (("s32", "s32"), None),
    "cudadev_next_section": (("s32",), "s32"),
    # synchronisation
    "cudadev_barrier": ((), None),
    "cudadev_trylock": (("s32",), "s32"),
    "cudadev_lock": (("s32",), None),
    "cudadev_unlock": (("s32",), None),
    # warp shuffles and type-generic atomics are *polymorphic* in the
    # value operand: the lowering pass special-cases them (result dtype
    # follows the value / pointee operand), so these entries only
    # document the shapes — "any" skips argument conversion.
    "__shfl_sync": (("u32", "any", "s32"), "any"),
    "__shfl_down_sync": (("u32", "any", "s32"), "any"),
    "__shfl_up_sync": (("u32", "any", "s32"), "any"),
    "__shfl_xor_sync": (("u32", "any", "s32"), "any"),
    **{name: (("u64", "any"), "any") for name in ATOMIC_RED_INTRINSICS},
}

#: C prototypes injected into generated kernel files so they compile as
#: standalone CUDA C (the device-library header, paper Fig. 2's "GPU
#: kernel files" are self-contained translation units).
DEVICE_LIBRARY_HEADER = """\
/* cudadev device runtime library interface (auto-generated) */
__device__ int omp_get_thread_num(void);
__device__ int omp_get_num_threads(void);
__device__ int omp_get_team_num(void);
__device__ int omp_get_num_teams(void);
__device__ int omp_get_max_threads(void);
__device__ int omp_is_initial_device(void);
__device__ void cudadev_target_init(int mode);
__device__ int cudadev_in_masterwarp(int thrid);
__device__ int cudadev_is_masterthr(int thrid);
__device__ void cudadev_register_parallel(void *fn, void *args, int nthreads);
__device__ void cudadev_workerfunc(int thrid);
__device__ void cudadev_exit_target(void);
__device__ void *cudadev_getaddr(void *p);
__device__ void *cudadev_push_shmem(void *src, long size);
__device__ void cudadev_pop_shmem(void *dst, long size);
__device__ void cudadev_get_distribute_chunk(long lo, long hi, long *tlo, long *thi);
__device__ void cudadev_get_distribute_chunk_dim(int dim, long lo, long hi, long *tlo, long *thi);
__device__ int cudadev_get_static_chunk_dim(int dim, int id, long lo, long hi, long chunk, long *tlo, long *thi);
__device__ int cudadev_get_static_chunk(int id, long lo, long hi, long chunk, long *tlo, long *thi);
__device__ int cudadev_get_dynamic_chunk(int id, long lo, long hi, long chunk, long *tlo, long *thi);
__device__ int cudadev_get_guided_chunk(int id, long lo, long hi, long chunk, long *tlo, long *thi);
__device__ void cudadev_sections_init(int id, int nsections);
__device__ int cudadev_next_section(int id);
__device__ void cudadev_barrier(void);
__device__ int cudadev_trylock(int id);
__device__ void cudadev_lock(int id);
__device__ void cudadev_unlock(int id);
/* __shfl_*_sync and cudadev_atomic_red_* are type-generic (value-
   polymorphic) builtins: like atomicAdd they carry no C prototype here —
   the nvcc-simulator lowers calls to them directly, typing the result
   from the value / pointee operand. */
"""


def build_intrinsics() -> dict:
    """The callable table the engine dispatches CallOp through."""
    return {
        "omp_get_thread_num": omp_get_thread_num,
        "omp_get_num_threads": omp_get_num_threads,
        "omp_get_team_num": omp_get_team_num,
        "omp_get_num_teams": omp_get_num_teams,
        "omp_get_max_threads": omp_get_max_threads,
        "omp_is_initial_device": omp_is_initial_device,
        "cudadev_target_init": masterworker.cudadev_target_init,
        "cudadev_in_masterwarp": masterworker.cudadev_in_masterwarp,
        "cudadev_is_masterthr": masterworker.cudadev_is_masterthr,
        "cudadev_register_parallel": masterworker.cudadev_register_parallel,
        "cudadev_workerfunc": masterworker.cudadev_workerfunc,
        "cudadev_exit_target": masterworker.cudadev_exit_target,
        "cudadev_getaddr": masterworker.cudadev_getaddr,
        "cudadev_push_shmem": shmem.cudadev_push_shmem,
        "cudadev_pop_shmem": shmem.cudadev_pop_shmem,
        "cudadev_get_distribute_chunk": schedules.cudadev_get_distribute_chunk,
        "cudadev_get_distribute_chunk_dim": schedules.cudadev_get_distribute_chunk_dim,
        "cudadev_get_static_chunk_dim": schedules.cudadev_get_static_chunk_dim,
        "cudadev_get_static_chunk": schedules.cudadev_get_static_chunk,
        "cudadev_get_dynamic_chunk": schedules.cudadev_get_dynamic_chunk,
        "cudadev_get_guided_chunk": schedules.cudadev_get_guided_chunk,
        "cudadev_sections_init": sections.cudadev_sections_init,
        "cudadev_next_section": sections.cudadev_next_section,
        "cudadev_barrier": barriers.cudadev_barrier,
        "cudadev_trylock": sync.cudadev_trylock,
        "cudadev_lock": sync.cudadev_lock,
        "cudadev_unlock": sync.cudadev_unlock,
        "__shfl_sync": shuffle.shfl_sync,
        "__shfl_down_sync": shuffle.shfl_down_sync,
        "__shfl_up_sync": shuffle.shfl_up_sync,
        "__shfl_xor_sync": shuffle.shfl_xor_sync,
        **ATOMIC_RED_INTRINSICS,
    }
