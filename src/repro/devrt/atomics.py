"""Type-generic atomic read-modify-write intrinsics.

CUDA hardware provides ``atomicAdd``/``atomicMax``/``atomicMin`` only for
a limited type/op matrix — notably *no* float ``atomicMax``/``atomicMin``
and no ``atomicMul`` at all.  Real runtimes synthesise the missing
combinations as compare-and-swap loops; the generated code here calls
these ``cudadev_atomic_red_<op>`` intrinsics instead of open-coding the
CAS loop, and the simulator executes the read-modify-write directly
(one intrinsic invocation is atomic with respect to other warps: the
scheduler only switches warps at yield points, and these never yield).

Each intrinsic takes ``(T *addr, T value)``, applies ``*addr = *addr OP
value`` per active lane in lane order, and returns the per-lane *old*
values (so ``atomic capture`` lowers onto the same entry points).  The
cost model matches :meth:`WarpExec._atomic`: one ``atomics`` counter
tick per active lane, direct space access without load/store
instruction accounting.
"""

from __future__ import annotations

import numpy as np

from repro.cuda.sim.warp import WARP_SIZE
from repro.devrt.state import pure


def _combine_add(old, val, dtype):
    with np.errstate(over="ignore", invalid="ignore"):
        return dtype.type(old + val)


def _combine_sub(old, val, dtype):
    with np.errstate(over="ignore", invalid="ignore"):
        return dtype.type(old - val)


def _combine_mul(old, val, dtype):
    with np.errstate(over="ignore", invalid="ignore"):
        return dtype.type(old * val)


def _combine_max(old, val, dtype):
    return max(old, dtype.type(val))


def _combine_min(old, val, dtype):
    return min(old, dtype.type(val))


def _combine_and(old, val, dtype):
    return dtype.type(old & dtype.type(val))


def _combine_or(old, val, dtype):
    return dtype.type(old | dtype.type(val))


def _combine_xor(old, val, dtype):
    return dtype.type(old ^ dtype.type(val))


def _make_atomic_red(name: str, combine):
    def fn(warp, mask, args):
        stats = warp.engine.stats
        addrs = np.broadcast_to(
            np.asarray(args[0], dtype=np.uint64), (WARP_SIZE,))
        vals = np.asarray(args[1])
        if vals.ndim == 0:
            vals = np.full(WARP_SIZE, vals)
        dtype = vals.dtype
        olds = np.zeros(WARP_SIZE, dtype=dtype)
        for lane in np.flatnonzero(mask):
            stats.atomics += 1
            addr = int(addrs[lane])
            space = warp.engine.resolve_space(warp, addr)
            old = space.load(addr, dtype)
            olds[lane] = old
            space.store(addr, dtype, combine(old, vals[lane], dtype))
        return olds

    fn.__name__ = name
    return pure(fn)


ATOMIC_RED_OPS = {
    "add": _combine_add,
    "sub": _combine_sub,
    "mul": _combine_mul,
    "max": _combine_max,
    "min": _combine_min,
    "and": _combine_and,
    "or": _combine_or,
    "xor": _combine_xor,
}

ATOMIC_RED_INTRINSICS = {
    f"cudadev_atomic_red_{op}": _make_atomic_red(
        f"cudadev_atomic_red_{op}", combine)
    for op, combine in ATOMIC_RED_OPS.items()
}
