"""Warp shuffle intrinsics (``__shfl_*_sync``) on the lockstep warp.

The functional simulator executes a warp as 32 numpy lanes in lockstep,
so a shuffle is a permutation gather over the value register.  Matching
CUDA semantics for the cases the reduction epilogue generates:

* an out-of-range source lane returns the calling lane's own value
  (CUDA: the value is unchanged for ``__shfl_down/up`` past the segment
  edge);
* the member-mask argument is accepted and ignored — the simulator runs
  all 32 lanes of a warp in lockstep, so every lane's register is
  defined, and generated code guards combines against inactive lanes
  itself (``if (lane + off < warp_active)``), exactly as hand-written
  CUDA reductions do.

Shuffles never suspend, so they are :func:`~repro.devrt.state.pure`
intrinsics; in the compiled fast path they dispatch through the same
``warp._call`` path as the tree-walk reference, keeping verify-mode
stats identical by construction.
"""

from __future__ import annotations

import numpy as np

from repro.cuda.sim.warp import WARP_SIZE
from repro.devrt.state import pure

_LANES = np.arange(WARP_SIZE)


def _pick(value, src: np.ndarray) -> np.ndarray:
    """Gather ``value[src]`` per lane; out-of-range sources keep own value."""
    value = np.asarray(value)
    if value.ndim == 0:
        value = np.full(WARP_SIZE, value)
    valid = (src >= 0) & (src < WARP_SIZE)
    picked = value[np.where(valid, src, _LANES)]
    return np.where(valid, picked, value).astype(value.dtype, copy=False)


def _sel(arg) -> np.ndarray:
    sel = np.asarray(arg)
    if sel.ndim == 0:
        sel = np.full(WARP_SIZE, sel)
    return sel.astype(np.int64, copy=False)


@pure
def shfl_sync(warp, mask, args):
    _member, value, src_lane = args
    return _pick(value, _sel(src_lane))


@pure
def shfl_down_sync(warp, mask, args):
    _member, value, delta = args
    return _pick(value, _LANES + _sel(delta))


@pure
def shfl_up_sync(warp, mask, args):
    _member, value, delta = args
    return _pick(value, _LANES - _sel(delta))


@pure
def shfl_xor_sync(warp, mask, args):
    _member, value, lane_mask = args
    return _pick(value, _LANES ^ _sel(lane_mask))
