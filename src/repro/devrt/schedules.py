"""Loop worksharing: the two-phase chunk distribution of paper §3.1.

Phase 1 — ``cudadev_get_distribute_chunk``: every thread computes the
chunk destined for *its team* (contiguous static distribution over teams,
the only ``dist_schedule`` the paper supports).

Phase 2 — ``cudadev_get_{static,dynamic,guided}_chunk``: threads of the
team carve the team chunk.  All three share the calling convention the
generated code uses::

    long _tlo, _thi;
    while (cudadev_get_static_chunk(loop_id, lo, hi, chunk, &_tlo, &_thi)) {
        for (i = _tlo; i < _thi; i++) ...
    }

Each call hands the calling thread its next chunk and returns 0 when the
thread's share is exhausted.  State is per (block, loop id); it resets
once every participating thread has drained, so a worksharing loop nested
in a sequential loop re-runs correctly.
"""

from __future__ import annotations

import numpy as np

from repro.cuda.sim.warp import WARP_SIZE, WarpExec
from repro.devrt.state import (
    block_state, pure, region_thread_ids, region_threads, store_out, uniform,
)


def _team_bounds(warp: WarpExec, lo: int, hi: int) -> tuple[int, int]:
    gx, gy, gz = warp.block.grid_dim
    cx, cy, cz = warp.block.block_idx
    nteams = gx * gy * gz
    team = cx + gx * (cy + gy * cz)
    n = max(hi - lo, 0)
    chunk = (n + nteams - 1) // nteams
    tlo = lo + team * chunk
    thi = min(tlo + chunk, hi)
    return tlo, min(thi, hi)


@pure
def cudadev_get_distribute_chunk(warp: WarpExec, mask, args):
    """Phase-1 distribution: this team's contiguous chunk of [lo, hi)."""
    lo = int(uniform(args[0], mask))
    hi = int(uniform(args[1], mask))
    tlo, thi = _team_bounds(warp, lo, hi)
    store_out(warp, args[2], np.int64, np.full(WARP_SIZE, tlo, dtype=np.int64), mask)
    store_out(warp, args[3], np.int64, np.full(WARP_SIZE, thi, dtype=np.int64), mask)
    return None


def _sched_state(warp: WarpExec, loop_id: int, kind: str, lo: int, hi: int,
                 nthreads: int) -> dict:
    devrt = block_state(warp)
    sched = devrt["sched"]
    state = sched.get(loop_id)
    if state is None or state.get("finished"):
        nthreads_block = devrt["nthreads_block"]
        state = {
            "kind": kind,
            "lo": lo, "hi": hi,
            "calls": np.zeros(max(nthreads_block, 1), dtype=np.int64),
            "next": lo,                  # dynamic/guided shared counter
            "drained": np.zeros(max(nthreads_block, 1), dtype=bool),
            "finished": False,
        }
        sched[loop_id] = state
    return state


def _mark_drained(state: dict, tids: np.ndarray, lanes: np.ndarray,
                  nthreads: int) -> None:
    state["drained"][tids[lanes] % state["drained"].size] = True
    if int(state["drained"][:nthreads].sum()) >= nthreads:
        state["finished"] = True


def _chunk_call(warp: WarpExec, mask, args, kind: str):
    loop_id = int(uniform(args[0], mask))
    lo = int(uniform(args[1], mask))
    hi = int(uniform(args[2], mask))
    chunk = int(uniform(args[3], mask))
    nthreads = region_threads(warp)
    tids = region_thread_ids(warp)
    state = _sched_state(warp, loop_id, kind, lo, hi, nthreads)
    tlo = np.zeros(WARP_SIZE, dtype=np.int64)
    thi = np.zeros(WARP_SIZE, dtype=np.int64)
    got = np.zeros(WARP_SIZE, dtype=np.int32)
    active = np.flatnonzero(mask)
    if kind == "static":
        got[:] = _static_chunks(state["calls"], tids, active, lo, hi, chunk,
                                nthreads, tlo, thi)
    elif kind in ("dynamic", "guided"):
        if chunk <= 0:
            chunk = 1
        # per-lane sequential grabs from the shared counter (atomicity is
        # provided by the cooperative scheduler: intrinsics are not preempted)
        for lane in active:
            remaining = hi - state["next"]
            if remaining <= 0:
                got[lane] = 0
                _mark_drained(state, tids, np.array([lane]), nthreads)
                continue
            if kind == "guided":
                size = max((remaining + nthreads - 1) // nthreads, chunk)
            else:
                size = chunk
            tlo[lane] = state["next"]
            thi[lane] = min(state["next"] + size, hi)
            state["next"] = int(thi[lane])
            got[lane] = 1
    else:  # pragma: no cover
        raise ValueError(kind)
    store_out(warp, args[4], np.int64, tlo, mask)
    store_out(warp, args[5], np.int64, thi, mask)
    return got


def _static_chunks(calls: np.ndarray, tids: np.ndarray, active: np.ndarray,
                   lo: int, hi: int, chunk: int, nthreads: int,
                   tlo: np.ndarray, thi: np.ndarray) -> np.ndarray:
    """Static-schedule iterator step.  State is per-lane (a call counter),
    and resets per lane on exhaustion, so a statically-scheduled
    worksharing loop can be re-entered (nested chunk loops of the 2D
    combined-construct lowering rely on this)."""
    got = np.zeros(tlo.shape, dtype=np.int32)
    n = max(hi - lo, 0)
    if chunk <= 0:
        block = (n + nthreads - 1) // nthreads if nthreads else 0
        cnt = calls[tids[active]]
        starts = lo + tids[active].astype(np.int64) * block
        ends = np.minimum(starts + block, hi)
        ok = (cnt == 0) & (starts < ends)
    else:
        cnt = calls[tids[active]]
        idx = tids[active].astype(np.int64) + cnt * nthreads
        starts = lo + idx * chunk
        ends = np.minimum(starts + chunk, hi)
        ok = starts < hi
    tlo[active] = starts
    thi[active] = ends
    got[active] = ok.astype(np.int32)
    # advance lanes that received work; reset exhausted lanes
    calls[tids[active]] = np.where(ok, cnt + 1, 0)
    return got


@pure
def cudadev_get_static_chunk(warp: WarpExec, mask, args):
    return _chunk_call(warp, mask, args, "static")


def _dim_of(warp: WarpExec, dim: int) -> tuple[int, int, int, int]:
    """(block coordinate, grid size, per-lane thread coordinate array is
    handled by caller) for dimension 0=x, 1=y, 2=z."""
    gx, gy, gz = warp.block.grid_dim
    cx, cy, cz = warp.block.block_idx
    return ((cx, gx), (cy, gy), (cz, gz))[dim]


@pure
def cudadev_get_distribute_chunk_dim(warp: WarpExec, mask, args):
    """2D/3D distribute (paper §5: OMPi "maps these values to two
    dimensions, so as to match the block and grid dimensions of the
    equivalent cuda applications"): this team's contiguous chunk of
    [lo, hi) along one grid dimension."""
    dim = int(uniform(args[0], mask))
    lo = int(uniform(args[1], mask))
    hi = int(uniform(args[2], mask))
    team, nteams = _dim_of(warp, dim)
    n = max(hi - lo, 0)
    chunk = (n + nteams - 1) // nteams
    tlo = min(lo + team * chunk, hi)
    thi = min(tlo + chunk, hi)
    store_out(warp, args[3], np.int64,
              np.full(WARP_SIZE, tlo, dtype=np.int64), mask)
    store_out(warp, args[4], np.int64,
              np.full(WARP_SIZE, thi, dtype=np.int64), mask)
    return None


def _lane_coord(warp: WarpExec, dim: int) -> tuple[np.ndarray, int]:
    bx, by, bz = warp.block.block_dim
    if dim == 0:
        return warp.tid_x.astype(np.int64), bx
    if dim == 1:
        return warp.tid_y.astype(np.int64), by
    return warp.tid_z.astype(np.int64), bz


@pure
def cudadev_get_static_chunk_dim(warp: WarpExec, mask, args):
    """Static schedule along one block dimension (thread coordinate
    tid.{x,y,z} over blockDim.{x,y,z})."""
    dim = int(uniform(args[0], mask))
    loop_id = int(uniform(args[1], mask))
    lo = int(uniform(args[2], mask))
    hi = int(uniform(args[3], mask))
    chunk = int(uniform(args[4], mask))
    coords, nthreads = _lane_coord(warp, dim)
    devrt = block_state(warp)
    key = ("dim", loop_id, dim)
    calls = devrt["sched"].get(key)
    if calls is None:
        calls = np.zeros(max(devrt["nthreads_block"], 1), dtype=np.int64)
        devrt["sched"][key] = calls
    tlo = np.zeros(WARP_SIZE, dtype=np.int64)
    thi = np.zeros(WARP_SIZE, dtype=np.int64)
    got = np.zeros(WARP_SIZE, dtype=np.int32)
    active = np.flatnonzero(mask)
    # per-lane call counter indexed by the lane's linear thread id
    lane_ids = warp.lane_linear[active]
    cnt = calls[lane_ids]
    n = max(hi - lo, 0)
    if chunk <= 0:
        block = (n + nthreads - 1) // nthreads if nthreads else 0
        starts = lo + coords[active] * block
        ends = np.minimum(starts + block, hi)
        ok = (cnt == 0) & (starts < ends)
    else:
        idx = coords[active] + cnt * nthreads
        starts = lo + idx * chunk
        ends = np.minimum(starts + chunk, hi)
        ok = starts < hi
    tlo[active] = starts
    thi[active] = ends
    got[active] = ok.astype(np.int32)
    calls[lane_ids] = np.where(ok, cnt + 1, 0)   # reset exhausted lanes
    store_out(warp, args[5], np.int64, tlo, mask)
    store_out(warp, args[6], np.int64, thi, mask)
    return got


@pure
def cudadev_get_dynamic_chunk(warp: WarpExec, mask, args):
    return _chunk_call(warp, mask, args, "dynamic")


@pure
def cudadev_get_guided_chunk(warp: WarpExec, mask, args):
    return _chunk_call(warp, mask, args, "guided")
