"""The virtual clock.

All times in the reproduction are *modelled* seconds on the simulated
Jetson Nano, advanced explicitly by the runtime layers.  Determinism
requirement: two identical runs must produce identical timings, so no
wall-clock reads occur anywhere in a measurement path.  The paper's
"average of 10 runs" protocol is reproduced by adding seeded per-run
jitter in the harness, not here.
"""

from __future__ import annotations


class VirtualClock:
    def __init__(self):
        self._now = 0.0

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance to an absolute time; a timestamp already in the past is a
        no-op (used when joining asynchronous stream timelines that may have
        completed before the host reached the synchronisation point)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def reset(self) -> None:
        self._now = 0.0
