"""Analytic Maxwell kernel-time model.

Inputs are the dynamic :class:`~repro.cuda.sim.engine.KernelStats` counted
by the functional engine (possibly extrapolated from a representative
block/warp) plus the kernel's static resource estimate.  The model is a
bounded-throughput/limited-latency-hiding hybrid in the spirit of the
Hong–Kim GPU analytical model:

* **compute bound** — warp instruction dispatches divided by the SM's
  effective issue rate, which degrades when few warps are resident
  (occupancy: threads, registers and shared memory per block);
* **bandwidth bound** — 32-byte DRAM segments at sustained LPDDR4
  bandwidth;
* **latency bound** — outstanding-miss parallelism: with W resident warps
  only W memory requests overlap, so sparse-traffic kernels pay
  ``transactions x latency / W``;
* additive costs for barriers, atomics, divergence replays and
  shared/local traffic.

The kernel time is ``max(compute, bandwidth, latency) + extras``.  This
structure is what lets the paper's one anomaly emerge naturally: an
OMPi-generated kernel carries more live registers than its hand-written
CUDA twin, so for latency-sensitive, high-arithmetic-intensity kernels
(gemm at large sizes) its lower occupancy shows up as a constant-factor
slowdown, while streaming kernels (bicg/atax/mvt) sit on the bandwidth
bound where occupancy is irrelevant — exactly the shape of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.device import DeviceProperties
from repro.cuda.sim.engine import KernelStats
from repro.timing import calibration as C

#: Engines an operation can occupy on the simulated device.  The Jetson
#: Nano exposes one compute engine (a single Maxwell SM, so concurrent
#: kernels serialize) and one copy engine (a single DMA path through the
#: shared LPDDR4), which is exactly the hardware concurrency the stream
#: subsystem can exploit: copy/compute overlap, never compute/compute.
ENGINE_COMPUTE = "compute"
ENGINE_COPY = "copy"
ENGINES = (ENGINE_COMPUTE, ENGINE_COPY)

#: event-log kind -> device engine; kinds absent here (alloc/free/jit/
#: module_load) are host-synchronous API work and occupy no engine.
_ENGINE_OF_KIND = {
    "kernel": ENGINE_COMPUTE,
    "launch_overhead": ENGINE_COMPUTE,
    "memcpy_h2d": ENGINE_COPY,
    "memcpy_d2h": ENGINE_COPY,
    "memcpy_d2d": ENGINE_COPY,
}


def engine_of(kind: str) -> str | None:
    """Device engine a driver operation occupies (None: host-side only)."""
    return _ENGINE_OF_KIND.get(kind)


@dataclass
class KernelTimeBreakdown:
    compute_s: float
    bandwidth_s: float
    latency_s: float
    extra_s: float
    occupancy_warps: float
    resident_blocks: int

    @property
    def total_s(self) -> float:
        return max(self.compute_s, self.bandwidth_s, self.latency_s) + self.extra_s

    @property
    def bound(self) -> str:
        best = max(
            ("compute", self.compute_s),
            ("bandwidth", self.bandwidth_s),
            ("latency", self.latency_s),
            key=lambda kv: kv[1],
        )
        return best[0]


class GpuTimingModel:
    def __init__(self, device: DeviceProperties,
                 calib: C.ArchCalibration | None = None):
        self.device = device
        #: per-SM microarchitecture constants; the Maxwell set reproduces
        #: the historical module-level constants exactly
        self.calib = calib or C.calibration_for(device.compute_capability)
        self.clock_hz = device.clock_rate_khz * 1e3
        self.dram_cps = C.dram_cycles_per_segment(
            self.clock_hz, device.memory_bandwidth_gbps
        )

    # -- occupancy ------------------------------------------------------------
    def resident_blocks(self, threads_per_block: int, registers_per_thread: int,
                        smem_per_block: int) -> int:
        cal = self.calib
        if threads_per_block <= 0:
            return 1
        by_threads = cal.max_threads_per_sm // threads_per_block
        regs_per_block = max(registers_per_thread, 1) * threads_per_block
        by_regs = cal.registers_per_sm // max(regs_per_block, 1)
        by_smem = (self.device.shared_mem_per_block // smem_per_block
                   if smem_per_block > 0 else cal.max_blocks_per_sm)
        return max(1, min(by_threads, by_regs, by_smem, cal.max_blocks_per_sm))

    def occupancy_warps(self, stats: KernelStats) -> tuple[float, int]:
        tpb = stats.block[0] * stats.block[1] * stats.block[2]
        warps_per_block = max(1, (tpb + 31) // 32)
        resident = self.resident_blocks(tpb, stats.registers_per_thread,
                                        stats.smem_per_block)
        grid_blocks = max(1, stats.grid[0] * stats.grid[1] * stats.grid[2])
        resident = min(resident, grid_blocks)
        return float(warps_per_block * resident), resident

    # -- the model ------------------------------------------------------------
    def kernel_time(self, stats: KernelStats) -> KernelTimeBreakdown:
        cal = self.calib
        warps, resident = self.occupancy_warps(stats)
        issue_eff = min(1.0, max(cal.min_issue_eff, warps / cal.warps_for_peak))
        # instruction stream: f64 and SFU throughput penalties add to the
        # dispatch count (they occupy issue slots longer)
        eff_instructions = (
            stats.instructions
            + stats.alu_f64 / 32.0 * (cal.f64_penalty - 1.0)
            + stats.special_ops / 32.0 * (cal.sfu_penalty - 1.0)
        )
        compute_cycles = eff_instructions / (cal.ipc_peak * issue_eff)
        bandwidth_cycles = stats.global_transactions * self.dram_cps
        latency_cycles = (
            stats.global_mem_instructions * cal.dram_latency_cycles
            / max(warps, 1.0)
        )
        extra_cycles = (
            stats.barriers * cal.barrier_cycles
            + stats.atomics * cal.atomic_cycles
            + stats.divergent_branches * cal.divergence_cycles
            + stats.shared_accesses / 32.0 * cal.shared_access_cycles
            + stats.local_accesses / 32.0 * cal.local_access_cycles
        )
        # multi-SM parts spread the grid's blocks across SMs: per-SM
        # issue work, outstanding-miss parallelism and block-local extras
        # all scale with the SMs actually covered by the grid; DRAM
        # bandwidth is device-wide and does not.  With one SM (the Nano)
        # the divisor is 1 and every term is bit-identical to the
        # single-SM model this reproduction was calibrated as.
        grid_blocks = max(1, stats.grid[0] * stats.grid[1] * stats.grid[2])
        sms_used = min(self.device.multiprocessor_count, grid_blocks)
        if sms_used > 1:
            compute_cycles /= sms_used
            latency_cycles /= sms_used
            extra_cycles /= sms_used
        hz = self.clock_hz
        return KernelTimeBreakdown(
            compute_s=compute_cycles / hz,
            bandwidth_s=bandwidth_cycles / hz,
            latency_s=latency_cycles / hz,
            extra_s=extra_cycles / hz,
            occupancy_warps=warps,
            resident_blocks=resident,
        )
