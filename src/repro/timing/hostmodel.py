"""Host-side timing: ARM A57 work and LPDDR4 host<->device transfers.

The Jetson's host and device share physical LPDDR4; the CUDA programming
model still performs explicit copies between host allocations and device
allocations (both benchmark suites use cudaMemcpy / the cudadev mapping
machinery), so copies cost real bandwidth — roughly half the raw DRAM
rate, because a copy reads and writes the same memory.
"""

from __future__ import annotations

from repro.timing import calibration as C


class HostModel:
    def __init__(self, memcpy_bandwidth_gbps: float | None = None):
        #: per-device copy bandwidth (DeviceProperties.copy_bandwidth_gbps);
        #: defaults to the Nano's shared-LPDDR4 calibration constant
        self.memcpy_bandwidth_gbps = (
            memcpy_bandwidth_gbps if memcpy_bandwidth_gbps
            else C.MEMCPY_BANDWIDTH_GBPS)

    def memcpy_time(self, nbytes: int) -> float:
        """Host<->device transfer time (either direction)."""
        if nbytes <= 0:
            return C.MEMCPY_LATENCY_S
        return C.MEMCPY_LATENCY_S + nbytes / (self.memcpy_bandwidth_gbps * 1e9)

    def alloc_time(self) -> float:
        return C.MEM_ALLOC_S

    def host_ops_time(self, ops: int) -> float:
        return ops * C.HOST_OP_CYCLES / C.A57_CLOCK_HZ
