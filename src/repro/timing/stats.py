"""Per-run event log: every driver-level action with its modelled cost.

The benchmark harness reads this to report "kernel execution time plus any
required memory operations" exactly as the paper's §5 measures, and the
ablation benches use it to separate JIT, launch-phase and transfer costs.

With the asynchronous offload subsystem every driver event also carries
its placement on the simulated device timeline (``stream``, ``t_start``,
``t_end``).  Serial accounting (:attr:`EventLog.measured_time`) sums the
per-event costs; overlap-aware accounting
(:meth:`EventLog.overlapped_time`) charges the *union* of the occupied
intervals, i.e. ``max()`` over concurrent streams, so copy/compute
overlap between independent ``target nowait`` regions becomes visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass
class RunEvent:
    kind: str                 # 'kernel' | 'memcpy_h2d' | 'memcpy_d2h' |
                              # 'alloc' | 'free' | 'jit' | 'launch_overhead' |
                              # 'module_load' | 'host'
    seconds: float
    detail: str = ""
    bytes: int = 0
    kernel: Optional[str] = None
    #: stream the operation ran on (None: host-synchronous, no stream)
    stream: Optional[int] = None
    #: placement on the simulated timeline; ``t_end == t_start + seconds``
    #: for every timed event, both 0.0 for events logged before the
    #: timeline existed (e.g. hand-built logs in tests)
    t_start: float = 0.0
    t_end: float = 0.0

    @property
    def has_span(self) -> bool:
        return self.t_end > self.t_start


def merge_interval_length(intervals: Iterable[tuple[float, float]]) -> float:
    """Total length of the union of ``(start, end)`` intervals.

    Concurrent (overlapping) intervals are charged once — the ``max()``
    over streams the async timing accounting is built on."""
    spans = sorted((s, e) for s, e in intervals if e > s)
    total = 0.0
    cur_start: Optional[float] = None
    cur_end = 0.0
    for s, e in spans:
        if cur_start is None or s > cur_end:
            if cur_start is not None:
                total += cur_end - cur_start
            cur_start, cur_end = s, e
        elif e > cur_end:
            cur_end = e
    if cur_start is not None:
        total += cur_end - cur_start
    return total


@dataclass
class EventLog:
    events: list[RunEvent] = field(default_factory=list)
    #: kind -> (seconds, count, bytes) folded out of ``events`` by
    #: :meth:`compact` — lets a long-lived driver keep exact per-kind
    #: totals without holding every event object alive
    _carry: dict = field(default_factory=dict)

    def add(self, kind: str, seconds: float, detail: str = "", nbytes: int = 0,
            kernel: Optional[str] = None, stream: Optional[int] = None,
            t_start: float = 0.0, t_end: float = 0.0) -> None:
        self.events.append(RunEvent(kind, seconds, detail, nbytes, kernel,
                                    stream, t_start, t_end))

    def compact(self) -> int:
        """Fold the live events into per-kind ``(seconds, count, bytes)``
        carry totals and drop the event objects; returns how many were
        folded.  ``total()``/``count()`` keep including the carried
        history, while the span-based views (:meth:`overlapped_time`,
        :attr:`wall_time`) only see events logged since — a serving
        runtime compacts between drains so the log stays bounded over
        thousands of requests."""
        folded = len(self.events)
        for e in self.events:
            sec, cnt, nby = self._carry.get(e.kind, (0.0, 0, 0))
            self._carry[e.kind] = (sec + e.seconds, cnt + 1, nby + e.bytes)
        self.events.clear()
        return folded

    def _carried_seconds(self, kinds: Optional[set] = None) -> float:
        return sum(sec for kind, (sec, _c, _b) in self._carry.items()
                   if kinds is None or kind in kinds)

    def total(self, *kinds: str) -> float:
        if not kinds:
            return (sum(e.seconds for e in self.events)
                    + self._carried_seconds())
        wanted = set(kinds)
        return (sum(e.seconds for e in self.events if e.kind in wanted)
                + self._carried_seconds(wanted))

    @property
    def kernel_time(self) -> float:
        return self.total("kernel")

    @property
    def memory_time(self) -> float:
        return self.total("memcpy_h2d", "memcpy_d2h", "alloc", "free")

    #: the event kinds the paper's metric charges
    MEASURED_KINDS = ("kernel", "launch_overhead", "memcpy_h2d", "memcpy_d2h",
                      "alloc", "free", "jit")

    @property
    def measured_time(self) -> float:
        """The paper's metric: kernel execution + required memory operations
        (launch overheads are part of kernel dispatch).  This is *serial*
        accounting — concurrent streams sum, which makes it the natural
        "fully serialized" baseline for the overlap benchmarks."""
        return self.total(*self.MEASURED_KINDS)

    # -- overlap-aware accounting ----------------------------------------------
    def _spans(self, kinds: Iterable[str]) -> tuple[list[tuple[float, float]], float]:
        """(timeline spans, summed cost of span-less events) for ``kinds``."""
        wanted = set(kinds)
        spans: list[tuple[float, float]] = []
        untimed = 0.0
        for e in self.events:
            if e.kind not in wanted:
                continue
            if e.has_span:
                spans.append((e.t_start, e.t_end))
            else:
                untimed += e.seconds
        return spans, untimed

    def overlapped_time(self, *kinds: str) -> float:
        """Timeline (wall-clock) accounting of the given kinds: the union of
        the intervals they occupy on the stream timelines, so work running
        concurrently on different streams is charged ``max()`` instead of
        sum.  Events without timeline information fall back to their serial
        cost.  With no arguments, charges :attr:`MEASURED_KINDS`."""
        spans, untimed = self._spans(kinds or self.MEASURED_KINDS)
        return merge_interval_length(spans) + untimed

    @property
    def wall_time(self) -> float:
        """End-to-end simulated span of all timed events."""
        spans, _ = self._spans({e.kind for e in self.events})
        if not spans:
            return 0.0
        return max(e for _s, e in spans) - min(s for s, _e in spans)

    @property
    def overlap_ratio(self) -> float:
        """Serial cost over timeline cost of the measured kinds (>= 1.0;
        exactly 1.0 when execution was fully serialized)."""
        overlapped = self.overlapped_time()
        if overlapped <= 0.0:
            return 1.0
        return self.measured_time / overlapped

    def count(self, kind: str) -> int:
        carried = self._carry.get(kind, (0.0, 0, 0))[1]
        return sum(1 for e in self.events if e.kind == kind) + carried

    def clear(self) -> None:
        self.events.clear()
        self._carry.clear()
