"""Per-run event log: every driver-level action with its modelled cost.

The benchmark harness reads this to report "kernel execution time plus any
required memory operations" exactly as the paper's §5 measures, and the
ablation benches use it to separate JIT, launch-phase and transfer costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class RunEvent:
    kind: str                 # 'kernel' | 'memcpy_h2d' | 'memcpy_d2h' |
                              # 'alloc' | 'free' | 'jit' | 'launch_overhead' |
                              # 'module_load' | 'host'
    seconds: float
    detail: str = ""
    bytes: int = 0
    kernel: Optional[str] = None


@dataclass
class EventLog:
    events: list[RunEvent] = field(default_factory=list)

    def add(self, kind: str, seconds: float, detail: str = "", nbytes: int = 0,
            kernel: Optional[str] = None) -> None:
        self.events.append(RunEvent(kind, seconds, detail, nbytes, kernel))

    def total(self, *kinds: str) -> float:
        if not kinds:
            return sum(e.seconds for e in self.events)
        wanted = set(kinds)
        return sum(e.seconds for e in self.events if e.kind in wanted)

    @property
    def kernel_time(self) -> float:
        return self.total("kernel")

    @property
    def memory_time(self) -> float:
        return self.total("memcpy_h2d", "memcpy_d2h", "alloc", "free")

    @property
    def measured_time(self) -> float:
        """The paper's metric: kernel execution + required memory operations
        (launch overheads are part of kernel dispatch)."""
        return self.total(
            "kernel", "launch_overhead", "memcpy_h2d", "memcpy_d2h",
            "alloc", "free", "jit",
        )

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def clear(self) -> None:
        self.events.clear()
