"""Calibrated model constants.

These constants are fitted so the simulated Jetson Nano lands in the
absolute ranges of the paper's Figure 4 (execution times between ~0.05 s
and ~10 s across the six applications) while every *relative* effect —
who wins, scaling with problem size, the gemm@2048 gap — emerges from the
model structure, not from per-benchmark fudge factors.  EXPERIMENTS.md
records the paper-vs-measured comparison.

Hardware-anchored values (clock rate, core counts, warp size, bandwidth)
come from :mod:`repro.cuda.device` and are not repeated here.
"""

# -- GPU core model ------------------------------------------------------------
#: peak warp instructions issued per cycle on the single Maxwell SM
#: (4 schedulers, but realistic ILP keeps sustained issue below that)
IPC_PEAK = 4.0
#: resident warps needed to reach peak issue (latency hiding knee)
WARPS_FOR_PEAK = 16.0
#: minimum issue efficiency with a single resident warp
MIN_ISSUE_EFF = 0.14
#: f64 ALU throughput penalty on Maxwell (1/32 rate)
F64_PENALTY = 32.0
#: special-function (sqrt/exp/...) penalty relative to f32 ALU
SFU_PENALTY = 4.0
#: shared-memory access cost in cycles per warp access
SHARED_ACCESS_CYCLES = 0.5
#: local-memory access cost (local is DRAM-backed but L1-cached)
LOCAL_ACCESS_CYCLES = 0.25
#: cycles per 32-byte DRAM segment at peak bandwidth:
#: 921.6 MHz / (14.4 GB/s / 32 B) = ~2.05 cycles per segment
def dram_cycles_per_segment(clock_hz: float, bandwidth_gbps: float) -> float:
    return clock_hz / (bandwidth_gbps * 1e9 / 32.0)

#: average DRAM access latency in cycles (LPDDR4 on Tegra X1)
DRAM_LATENCY_CYCLES = 420.0
#: barrier cost per warp arrival, cycles
BARRIER_CYCLES = 32.0
#: atomic op cost, cycles each (global, serialised)
ATOMIC_CYCLES = 60.0
#: cost of a divergent branch re-convergence, cycles
DIVERGENCE_CYCLES = 4.0

#: register file per SM (Maxwell: 64K 32-bit registers)
REGISTERS_PER_SM = 65536
#: maximum resident threads / blocks per SM (cc 5.3)
MAX_THREADS_PER_SM = 2048
MAX_BLOCKS_PER_SM = 32

# -- launch / runtime overheads -----------------------------------------------
#: fixed kernel-launch latency (driver + hardware), seconds — Jetson-class
LAUNCH_LATENCY_S = 95e-6
#: additional per-launch cost of the cudadev module's three launch phases
#: (locate function, prepare parameters, set dims), seconds
CUDADEV_LAUNCH_PHASES_S = 22e-6
#: per-parameter preparation cost, seconds
PARAM_PREP_S = 0.6e-6
#: device memory allocation/free cost, seconds
MEM_ALLOC_S = 40e-6
#: fixed DMA setup latency per memcpy, seconds
MEMCPY_LATENCY_S = 18e-6
#: host<->device sustained copy bandwidth, GB/s (shared LPDDR4: a copy
#: reads and writes the same DRAM, so ~half the raw bandwidth)
MEMCPY_BANDWIDTH_GBPS = 6.8

# -- host (ARM A57) model -------------------------------------------------------
A57_CLOCK_HZ = 1.43e9
#: host cycles per interpreted "simple statement" (only used for the tiny
#: host-side bookkeeping the benchmarks measure)
HOST_OP_CYCLES = 1.6

# -- run-to-run jitter ---------------------------------------------------------
#: relative sigma of per-run multiplicative jitter ("negligible variation
#: among runs", paper §5)
RUN_JITTER_SIGMA = 0.004

# -- per-architecture calibration sets ------------------------------------------
# The module-level constants above are the Maxwell (Jetson Nano) fit the
# whole reproduction was calibrated against; they stay authoritative for
# sm_5x.  Other device backends bring their own set through
# :class:`ArchCalibration` — the timing model reads every constant through
# its calibration object, and the Maxwell instance reproduces the module
# constants exactly, so single-SM Nano timings are bit-identical to the
# pre-backend-subsystem model.

from dataclasses import dataclass


@dataclass(frozen=True)
class ArchCalibration:
    """The per-SM microarchitecture constants of one compute capability."""

    ipc_peak: float = IPC_PEAK
    warps_for_peak: float = WARPS_FOR_PEAK
    min_issue_eff: float = MIN_ISSUE_EFF
    f64_penalty: float = F64_PENALTY
    sfu_penalty: float = SFU_PENALTY
    shared_access_cycles: float = SHARED_ACCESS_CYCLES
    local_access_cycles: float = LOCAL_ACCESS_CYCLES
    dram_latency_cycles: float = DRAM_LATENCY_CYCLES
    barrier_cycles: float = BARRIER_CYCLES
    atomic_cycles: float = ATOMIC_CYCLES
    divergence_cycles: float = DIVERGENCE_CYCLES
    registers_per_sm: int = REGISTERS_PER_SM
    max_threads_per_sm: int = MAX_THREADS_PER_SM
    max_blocks_per_sm: int = MAX_BLOCKS_PER_SM


#: the Nano fit (identical to the module constants by construction)
MAXWELL_CALIBRATION = ArchCalibration()

#: Volta (V100): 1:2 fp64 rate instead of Maxwell's 1:32, a lower
#: latency-hiding knee (independent int/fp pipes dual-issue), HBM2
#: latency in the same cycle range at a higher clock.
VOLTA_CALIBRATION = ArchCalibration(
    f64_penalty=2.0,
    sfu_penalty=4.0,
    warps_for_peak=12.0,
    min_issue_eff=0.18,
    dram_latency_cycles=400.0,
    atomic_cycles=30.0,
)

#: compute-capability major -> calibration (Pascal Tegra boards share the
#: Maxwell fit: same issue structure, the clocks/bandwidth differ and
#: those are device properties, not calibration constants)
_CALIBRATIONS = {5: MAXWELL_CALIBRATION, 6: MAXWELL_CALIBRATION,
                 7: VOLTA_CALIBRATION}


def calibration_for(compute_capability: tuple[int, int]) -> ArchCalibration:
    """The calibration set for a device's compute capability (unknown
    majors fall back to the Maxwell fit rather than failing: a new
    device model runs conservatively until someone fits constants)."""
    return _CALIBRATIONS.get(compute_capability[0], MAXWELL_CALIBRATION)
