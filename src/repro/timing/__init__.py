"""Virtual time and performance models.

Nothing in the measurement path reads the wall clock: the driver advances
a :class:`~repro.timing.clock.VirtualClock` using the analytic Maxwell
model (:mod:`repro.timing.gpumodel`) for kernels and the LPDDR4 transfer
model (:mod:`repro.timing.hostmodel`) for memory operations, which is what
``omp_get_wtime`` and the benchmark harness observe.  Constants are
calibrated against the absolute ranges of the paper's Figure 4
(:mod:`repro.timing.calibration`).
"""

from repro.timing.clock import VirtualClock
from repro.timing.gpumodel import GpuTimingModel
from repro.timing.hostmodel import HostModel
from repro.timing.stats import EventLog, RunEvent

__all__ = ["EventLog", "GpuTimingModel", "HostModel", "RunEvent", "VirtualClock"]
