#!/usr/bin/env python3
"""Multi-device offloading: ``device(k)`` routing and sharded GEMM.

The runtime can simulate a registry of N CUDA devices (``ompicc
--num-devices``, ``REPRO_NUM_DEVICES``, or ``OmpiConfig(num_devices=N)``)
— each with its own driver state, memory arena, stream pool and data
environment.  This example shows the two ways a program uses them:

1. **explicit routing** — ``device(k)`` on a target construct maps the
   data into device *k*'s environment and launches on device *k*; the
   activity records prove which device ran what;
2. **sharding** — the ``shard(n)`` extension clause on ``target teams
   distribute`` splits the team iteration space across the first *n*
   devices.  Every device receives the full global grid dimensions but
   launches only its contiguous block subrange, so global indices are
   unchanged and the merged result is bit-identical to a single-device
   run.  The per-device kernels overlap on the simulated clock.

Run:  python3 examples/multi_device.py
"""

import numpy as np

from repro.ompi.compiler import OmpiCompiler
from repro.ompi.config import OmpiConfig

N = 48

GEMM = r'''
float A[%N%][%N%], B[%N%][%N%], C[%N%][%N%];

int main(void)
{
    int i, j, k;
    #pragma omp target teams distribute parallel for num_teams(8) %CLAUSE% \
        map(to: A, B) map(tofrom: C)
    for (i = 0; i < %N%; i++)
        for (j = 0; j < %N%; j++) {
            float acc = 0.0f;
            for (k = 0; k < %N%; k++)
                acc += A[i][k] * B[k][j];
            C[i][j] = acc;
        }
    return 0;
}
'''

ROUTED = r'''
float x[256], y[256];

int main(void)
{
    int i;
    #pragma omp target teams distribute parallel for device(0) map(tofrom: x)
    for (i = 0; i < 256; i++) x[i] = 2.0f * i;
    #pragma omp target teams distribute parallel for device(1) map(tofrom: y)
    for (i = 0; i < 256; i++) y[i] = 3.0f * i;
    return 0;
}
'''


def gemm_source(clause: str) -> str:
    src = GEMM.replace("%N%", str(N))
    return (src.replace("%CLAUSE% \\", "\\") if not clause
            else src.replace("%CLAUSE%", clause))


def seed(run):
    rng = np.random.default_rng(7)
    a = rng.standard_normal((N, N)).astype(np.float32)
    b = rng.standard_normal((N, N)).astype(np.float32)
    return {"A": a, "B": b, "C": np.zeros((N, N), dtype=np.float32)}


def main() -> None:
    print("== device(k) routing on a 2-device registry ==")
    prog = OmpiCompiler(OmpiConfig(num_devices=2, profile=True)) \
        .compile(ROUTED, "routed")
    run = prog.run()
    x = np.array(run.machine.global_array("x"))
    y = np.array(run.machine.global_array("y"))
    assert (x == 2.0 * np.arange(256)).all()
    assert (y == 3.0 * np.arange(256)).all()
    by_device = {}
    for r in run.ort.prof:
        if r.kind == "kernel":
            by_device.setdefault(r.device, []).append(r.name)
    for dev in sorted(by_device):
        print(f"  device {dev} ran: {', '.join(by_device[dev])}")
    assert sorted(by_device) == [0, 1], "each region ran on its own device"

    print(f"\n== sharded gemm (n={N}) on 4 devices vs 1 device ==")
    single = OmpiCompiler(OmpiConfig(num_devices=1)) \
        .compile(gemm_source(""), "gemm1")
    sharded = OmpiCompiler(OmpiConfig(num_devices=4, profile=True)) \
        .compile(gemm_source("shard(4)"), "gemm4")
    seeds = seed(None)
    run1 = single.run(seed_arrays={k: v.copy() for k, v in seeds.items()})
    run4 = sharded.run(seed_arrays={k: v.copy() for k, v in seeds.items()})
    c1 = np.array(run1.machine.global_array("C"))
    c4 = np.array(run4.machine.global_array("C"))
    assert c1.tobytes() == c4.tobytes(), "sharded result must be bit-identical"
    print(f"  bit-identical result across shards: checksum="
          f"{float(np.sum(c4)):.6g}")

    kernels = [r for r in run4.ort.prof if r.kind == "kernel"]
    kernels.sort(key=lambda r: r.device)
    print("  per-device shard launches (full global grid, partial blocks):")
    for r in kernels:
        print(f"    device {r.device}: grid={tuple(r.grid)} "
              f"[{r.t_start * 1e3:.3f} ms .. {r.t_end * 1e3:.3f} ms]")
    first_end = min(r.t_end for r in kernels)
    overlap = [r for r in kernels if r.t_start < first_end]
    assert len(overlap) == 4, "all four shards overlap on the clock"
    print(f"  all {len(kernels)} shards overlap in simulated time "
          "(independent devices, independent streams)")


if __name__ == "__main__":
    main()
