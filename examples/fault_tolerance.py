#!/usr/bin/env python3
"""Fault-tolerant offloading: a gemm that survives injected driver faults.

The benchmark-suite gemm (``C = alpha*A*B + beta*C``) is compiled once
and run three times on the simulated Jetson Nano:

1. clean — no faults, establishes the reference result;
2. chaos — the fault injector (``OmpiConfig(faults=...)``, the same
   machinery behind ``ompicc --faults`` and ``REPRO_FAULTS``) makes a
   device allocation fail with ``CUDA_ERROR_OUT_OF_MEMORY`` and two
   kernel launches fail with ``CUDA_ERROR_LAUNCH_FAILED``.  The runtime
   recovers transparently: the OOM triggers a cache eviction and a
   retried allocation, the launch failures are retried with backoff;
3. devlost — the device never comes up, and every target region falls
   back to its ``*_hostfn`` host twin.

All three runs must produce numerically identical C matrices.

Run:  python3 examples/fault_tolerance.py
"""

import numpy as np

from repro.bench.suite import get_app
from repro.ompi.compiler import OmpiCompiler
from repro.ompi.config import OmpiConfig

N = 64

CHAOS = "oom@cuMemAlloc:count=1;launch_failed@cuLaunchKernel:p=1.0,times=2"


def run_gemm(prog, app, faults=None):
    run = prog.run(seed_arrays=app.seed(N), faults=faults)
    result = np.array(run.machine.global_array("C"), copy=True)
    return result, run.ort.cudadev.fault_stats


def show(label, stats):
    line = ", ".join(f"{k}={v}" for k, v in sorted(stats.items())) or "none"
    print(f"  {label:8s} fault/recovery events: {line}")


def main() -> None:
    app = get_app("gemm")
    print(f"compiling gemm (n={N}) for the simulated Jetson Nano ...")
    config = OmpiConfig(block_shape=app.block_shape)
    prog = OmpiCompiler(config).compile(app.omp_source(N), "gemm_ft")

    print("running clean, chaos and device-lost configurations:\n")
    reference, stats = run_gemm(prog, app)
    show("clean", stats)
    assert not stats, "clean run must not record fault events"

    chaos, stats = run_gemm(prog, app, faults=CHAOS)
    show("chaos", stats)
    assert stats["inject"] == 3, "expected 1 OOM + 2 launch failures"
    assert stats["evict"] == 1, "OOM recovery evicts cached device state"
    assert stats["retry"] == 2, "launch failures are retried with backoff"
    assert "fallback" not in stats, "chaos run recovers on the device"

    lost, stats = run_gemm(prog, app, faults="devlost")
    show("devlost", stats)
    assert stats["device_lost"] == 1
    assert stats["fallback"] == 1, "target region reruns as gemm hostfn"

    assert np.array_equal(reference, chaos), "chaos result must match clean"
    assert np.array_equal(reference, lost), "host fallback must match clean"
    print(f"\nall three runs agree: C[0,0]={reference[0]:.6g}, "
          f"checksum={float(np.sum(reference)):.6g}")
    print("recovered from OOM (evict+retry), launch failures (retry) and "
          "device loss (host fallback) with identical results")


if __name__ == "__main__":
    main()
