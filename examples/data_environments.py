#!/usr/bin/env python3
"""Device data environments: target data / enter / exit / update (paper §2).

A Jacobi-style iteration keeps its grid resident on the device across many
kernel launches with a single enclosing ``target data`` region, syncing an
intermediate snapshot back with ``target update``.  The event log shows
that only two large transfers happen regardless of the iteration count.

Run:  python3 examples/data_environments.py
"""

import numpy as np

from repro.ompi import OmpiCompiler

N = 1 << 14
ITERS = 8

SOURCE = r'''
float grid[{N}], next[{N}];
float snapshot[{N}];

int main(void)
{{
    int i, it;
    int n = {N};
    #pragma omp target data map(tofrom: grid[0:n]) map(alloc: next[0:n])
    {{
        for (it = 0; it < {ITERS}; it++)
        {{
            #pragma omp target teams distribute parallel for \
                map(to: grid[0:n], n) map(tofrom: next[0:n]) \
                num_teams({TEAMS}) num_threads(256)
            for (i = 1; i < n - 1; i++)
                next[i] = 0.5f * grid[i] + 0.25f * (grid[i - 1] + grid[i + 1]);
            #pragma omp target teams distribute parallel for \
                map(to: next[0:n], n) map(tofrom: grid[0:n]) \
                num_teams({TEAMS}) num_threads(256)
            for (i = 1; i < n - 1; i++)
                grid[i] = next[i];
            if (it == {HALF})
            {{
                /* pull an intermediate state to the host without ending
                   the data environment */
                #pragma omp target update from(grid[0:n])
                for (i = 0; i < n; i++)
                    snapshot[i] = grid[i];
            }}
        }}
    }}
    return 0;
}}
'''.format(N=N, ITERS=ITERS, HALF=ITERS // 2, TEAMS=(N + 255) // 256)


def reference() -> tuple[np.ndarray, np.ndarray]:
    grid = np.zeros(N, dtype=np.float32)
    grid[N // 2] = 1000.0
    snap = None
    for it in range(ITERS):
        nxt = grid.copy()
        nxt[1:-1] = 0.5 * grid[1:-1] + 0.25 * (grid[:-2] + grid[2:])
        grid = nxt
        if it == ITERS // 2:
            snap = grid.copy()
    return grid, snap


def main() -> None:
    program = OmpiCompiler().compile(SOURCE, "jacobi")
    seed = np.zeros(N, dtype=np.float32)
    seed[N // 2] = 1000.0
    run = program.run(seed_arrays={"grid": seed})

    want_grid, want_snap = reference()
    got_grid = run.machine.global_array("grid")
    got_snap = run.machine.global_array("snapshot")
    assert np.allclose(got_grid, want_grid, rtol=1e-5, atol=1e-6)
    assert np.allclose(got_snap, want_snap, rtol=1e-5, atol=1e-6)
    print(f"Jacobi diffusion verified after {ITERS} device iterations "
          f"(+ mid-run target update snapshot)")

    big = N * 4
    h2d = [e for e in run.log.events if e.kind == "memcpy_h2d" and e.bytes >= big]
    d2h = [e for e in run.log.events if e.kind == "memcpy_d2h" and e.bytes >= big]
    launches = run.log.count("kernel")
    print(f"kernel launches:        {launches}")
    print(f"large host->device:     {len(h2d)}  (1 initial map)")
    print(f"large device->host:     {len(d2h)}  (1 target update + 1 final unmap)")
    print(f"modelled time:          {run.measured_time * 1e3:.3f} ms")
    assert len(h2d) == 1
    assert len(d2h) == 2


if __name__ == "__main__":
    main()
