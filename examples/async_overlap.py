#!/usr/bin/env python3
"""Asynchronous offloading: ``target nowait`` + ``depend`` on the
simulated Jetson Nano.

Two independent vector kernels are offloaded with ``nowait`` and disjoint
``depend`` sets, so the runtime places them on different CUDA streams:
their host<->device copies (copy engine) overlap the other region's
kernel (compute engine), and the modelled wall-clock comes out below the
serialized sum.  A third region consumes both results through
``depend(in: ...)`` clauses, so the task graph orders it after the
producers.  ``taskwait`` joins everything before the host reads back.

Run:  python3 examples/async_overlap.py
"""

import numpy as np

from repro.ompi import OmpiCompiler

N = 8192

SOURCE = r'''
double a[8192], b[8192], c[8192];

int main(void)
{
    int i;
    for (i = 0; i < 8192; i++) { a[i] = i; b[i] = 2.0 * i; c[i] = 0.0; }

    /* two independent producers: disjoint depend sets -> different streams */
    #pragma omp target teams distribute parallel for nowait depend(out: a) \
            map(tofrom: a[0:8192])
    for (i = 0; i < 8192; i++)
        a[i] = a[i] * 3.0;

    #pragma omp target teams distribute parallel for nowait depend(out: b) \
            map(tofrom: b[0:8192])
    for (i = 0; i < 8192; i++)
        b[i] = b[i] + 1.0;

    /* consumer: flow dependence on both producers orders it after them */
    #pragma omp target teams distribute parallel for nowait \
            depend(in: a) depend(in: b) depend(out: c) \
            map(to: a[0:8192], b[0:8192]) map(from: c[0:8192])
    for (i = 0; i < 8192; i++)
        c[i] = a[i] + b[i];

    #pragma omp taskwait
    printf("c[1] = %.1f\n", (double) c[1]);
    return 0;
}
'''


def main() -> None:
    program = OmpiCompiler().compile(SOURCE, "async_overlap")
    run = program.run()
    print("=== program output ===")
    print(run.stdout)

    c = run.machine.global_array("c")
    idx = np.arange(N)
    assert np.allclose(c, 3.0 * idx + (2.0 * idx + 1.0)), "result mismatch!"
    print("result verified against numpy\n")

    log = run.ort.cudadev.driver.log
    print("=== simulated timeline (per stream) ===")
    for event in log.events:
        if event.kind in ("kernel", "memcpy_h2d", "memcpy_d2h"):
            print(f"  stream {event.stream}  {event.kind:12s} "
                  f"[{event.t_start * 1e6:9.1f} us .. {event.t_end * 1e6:9.1f} us]"
                  f"  {event.kernel or ''}")

    serial = log.measured_time
    wall = log.overlapped_time()
    print("\n=== overlap accounting ===")
    print(f"  serialized sum of device ops : {serial * 1e3:8.3f} ms")
    print(f"  overlapped wall-clock        : {wall * 1e3:8.3f} ms")
    print(f"  overlap ratio                : {log.overlap_ratio:8.3f}x")
    assert wall < serial, "expected copy/compute overlap to shorten the timeline"


if __name__ == "__main__":
    main()
