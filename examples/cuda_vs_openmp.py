#!/usr/bin/env python3
"""Run one Figure-4 point: the same gemm in pure CUDA and in OpenMP.

Reproduces the paper's methodology end to end for a single configuration:
the CUDA program runs through the simulated nvcc + runtime API, the
OpenMP program through the OMPi translator + cudadev module, both on the
same simulated board, and the script reports the paper's metric side by
side plus functional agreement.

Run:  python3 examples/cuda_vs_openmp.py [size]
"""

import sys

import numpy as np

from repro.bench.harness import run_cuda, run_ompi, verify_app
from repro.bench.suite import get_app


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    app = get_app("gemm")

    print(f"verifying gemm at n={app.verify_size} (full functional run)...")
    outcome = verify_app(app)
    assert outcome.ok, outcome
    print(f"  both versions match the numpy reference "
          f"(max rel err {outcome.max_err_ompi:.2e})\n")

    print(f"timing gemm at n={size} on the simulated Jetson Nano 2GB...")
    cuda_result, _ = run_cuda(app, size)
    ompi_result, _ = run_ompi(app, size)

    print(f"{'version':>8} {'measured':>12} {'kernel':>12} {'memory ops':>12}")
    for r in (cuda_result, ompi_result):
        print(f"{r.version:>8} {r.mean_s:>11.4f}s {r.kernel_s:>11.4f}s "
              f"{r.memory_s:>11.4f}s")
    ratio = ompi_result.mean_s / cuda_result.mean_s
    print(f"\nOMPi/CUDA ratio: {ratio:.3f} "
          f"(paper §5: OMPi 'follows closely the performance of pure cuda')")


if __name__ == "__main__":
    main()
