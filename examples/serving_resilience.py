#!/usr/bin/env python3
"""Serving-tier resilience: surviving a device loss without lying.

A 2-device :class:`~repro.serving.OffloadServer` serves two sessions
while device 0 carries a fault plan that kills it on its first kernel
launch (a mid-run sticky ``devlost``).  The resilience layer reacts
instead of silently host-degrading:

* the circuit breaker for device 0 trips permanently open,
* the in-flight request retries with backoff on the healthy device 1
  and completes bit-identically,
* the affected session live-migrates (warm buffers included,
  digest-verified) and later submissions route around the dead device,
* every request either completes or is rejected with a typed error —
  here a 1 ns deadline demonstrates the :class:`DeadlineExceeded` path.

Run:  python3 examples/serving_resilience.py [trace.json]
"""

import sys

import numpy as np

from repro.serving import DeadlineExceeded, OffloadServer

N = 256

VADD = f"""
float a[{N}], b[{N}], c[{N}];
int main() {{
    for (int i = 0; i < {N}; i++) {{ a[i] = i; b[i] = 2 * i; c[i] = 0; }}
    #pragma omp target teams distribute parallel for \\
            map(to: a, b) map(from: c)
    for (int i = 0; i < {N}; i++)
        c[i] = a[i] + b[i];
    return 0;
}}
"""


def main() -> None:
    trace_path = sys.argv[1] if len(sys.argv) > 1 else "resilience_trace.json"
    server = OffloadServer(
        num_devices=2,
        profile=trace_path,
        # device 0 dies on its first kernel launch; device 1 is healthy
        faults={0: "device_unavailable@cuLaunchKernel:count=1,sticky=1"},
    )
    with server:
        victim = server.open_session(tenant="alice", device=0)
        healthy = server.open_session(tenant="bob", device=1)
        r0 = server.submit(victim, VADD, name="vadd", outputs=("c",))
        r1 = server.submit(healthy, VADD, name="vadd", outputs=("c",))
        server.drain()

        expect = np.arange(N, dtype=np.float32) * 3.0
        for req in (r0, r1):
            assert req.status == "done", req.error
            assert np.array_equal(np.asarray(req.result["c"]), expect)
        print(f"device 0 lost mid-launch: request {r0.seq} failed over to "
              f"device {r0.device} after {r0.retries} retry, "
              f"result verified bit-identical")
        print(f"session {victim.sid} migrated to device {victim.device} "
              f"({victim.migrations} migration)")

        # later work routes around the open breaker without faulting
        r2 = server.submit(victim, VADD, name="vadd", outputs=("c",))
        server.drain()
        assert r2.status == "done" and r2.device == 1
        summary = server.summary()
        print(f"breakers: {summary['breakers']['states']}  "
              f"health: {summary['device_health']}  "
              f"recovery: {summary['fault_recovery']}")

        # deadlines reject instead of serving late: a 1 ns budget cannot
        # cover any modelled offload
        try:
            server.submit(victim, VADD, name="vadd", outputs=("c",),
                          arrival=server.clock.now(),
                          deadline=server.clock.now())
        except DeadlineExceeded as exc:
            print(f"unmeetable deadline rejected at admission: {exc}")

        for s in (victim, healthy):
            server.close_session(s)
    print(f"chrome trace written to {trace_path} "
          f"(resilience track: pid 5, open chrome://tracing)")


if __name__ == "__main__":
    main()
