#!/usr/bin/env python3
"""Inspect the master/worker transformation (paper §3.2, Fig. 3).

Compiles the paper's Fig. 3a example — a target region with a standalone
``parallel`` construct — and prints the generated kernel file next to the
runtime events, showing the scheme in action: 128-thread launch, one
master thread, 96 workers woken through barrier B1, shared-memory stack
traffic for the shared scalar ``i``.

Run:  python3 examples/masterworker_inspect.py
"""

from repro.ompi import OmpiCompiler

# Paper Fig. 3a (the x array is a global here; the paper maps x[:96])
SOURCE = r'''
int x[96];

int main(void)
{
    #pragma omp target map(tofrom: x)
    {
        int i = 2;
        #pragma omp parallel num_threads(96)
        {
            x[omp_get_thread_num()] = i + 1;
        }
        printf(" x[0] = %d\n", x[0]);
        printf("x[95] = %d\n", x[95]);
    }
    return 0;
}
'''


def main() -> None:
    program = OmpiCompiler().compile(SOURCE, "fig3")

    print("=== generated kernel file (compare paper Fig. 3b) ===")
    text = program.kernel_sources["fig3_kernel0"]
    print(text[text.find("struct vars_st0"):])

    run = program.run()
    print("=== device output (expected: x[0] = 3, x[95] = 3) ===")
    print(run.stdout)
    assert "x[0] = 3" in run.stdout
    assert "x[95] = 3" in run.stdout

    stats = run.ort.cudadev.driver.last_kernel_stats
    print("=== launch shape ===")
    print(f"  grid={stats.grid} block={stats.block}  "
          f"(the paper's fixed 128 threads: 1 master warp + 3 worker warps)")
    print(f"  barrier arrivals: {stats.barriers}  "
          f"(B1 wake + B2 participants + B1 end + exit)")


if __name__ == "__main__":
    main()
