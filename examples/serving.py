#!/usr/bin/env python3
"""Offload-as-a-service quick start: the persistent serving runtime.

One :class:`~repro.serving.OffloadServer` owns a shared compile cache
and a 2-device registry.  Three client sessions from two tenants submit
``#pragma omp target`` jobs; the server admits them deterministically,
batches compatible launches per device, and keeps each session's device
arrays warm between requests so a repeat submission skips both the
compile and the host-to-device copies.

Run:  python3 examples/serving.py [trace.json]
"""

import sys

import numpy as np

from repro.serving import OffloadServer, TenantQuota

N = 256

VADD = f"""
float a[{N}], b[{N}], c[{N}];
int main() {{
    for (int i = 0; i < {N}; i++) {{ a[i] = i; b[i] = 2 * i; c[i] = 0; }}
    #pragma omp target teams distribute parallel for \\
            map(to: a, b) map(from: c)
    for (int i = 0; i < {N}; i++)
        c[i] = a[i] + b[i];
    return 0;
}}
"""

SCALE = f"""
float x[{N}], y[{N}];
int main() {{
    for (int i = 0; i < {N}; i++) {{ x[i] = i; y[i] = 1.0f; }}
    #pragma omp target teams distribute parallel for \\
            map(to: x) map(tofrom: y)
    for (int i = 0; i < {N}; i++)
        y[i] = 2.5f * x[i] + y[i];
    return 0;
}}
"""


def main() -> None:
    trace_path = sys.argv[1] if len(sys.argv) > 1 else "serving_trace.json"
    server = OffloadServer(
        num_devices=2,
        profile=trace_path,
        default_quota=TenantQuota(max_sessions=4, max_pending=32),
    )
    with server:
        alice = [server.open_session(tenant="alice") for _ in range(2)]
        bob = [server.open_session(tenant="bob")]
        print(f"opened {len(server.sessions)} sessions on "
              f"{server.num_devices} simulated devices")

        # round 1: cold — every request compiles (cache miss) and copies
        for round_no in range(2):
            reqs = []
            for s in alice:
                reqs.append(server.submit(s, VADD, name="vadd",
                                          outputs=("c",)))
            reqs.append(server.submit(bob[0], SCALE, name="scale",
                                      outputs=("y",)))
            server.drain()
            label = "cold" if round_no == 0 else "warm"
            for req in reqs:
                assert req.status == "done", req.error
            print(f"round {round_no} ({label}): "
                  f"{len(reqs)} requests done, compile cache "
                  f"{server.compile_cache.stats}")

        c = np.asarray(reqs[0].result["c"])
        y = np.asarray(reqs[-1].result["y"])
        expect_c = np.arange(N, dtype=np.float32) * 3.0
        assert np.array_equal(c, expect_c), "vadd output mismatch"
        assert y[3] == np.float32(2.5) * 3 + 1, "scale output mismatch"
        print(f"vadd c[255] = {c[-1]:.1f}, scale y[255] = {y[-1]:.1f} "
              f"(both verified)")

        # warm state: round 2 reused the parked device arrays, so the
        # unchanged map(to:) inputs skipped their host-to-device copies
        reuse = sum(s.reuse_hits for s in alice + bob)
        print(f"warm-state reuse: {reuse} host-to-device copies elided")

        summary = server.stats.summary()
        print(f"served {summary['completed']} requests  "
              f"p50 {summary['latency_p50_s'] * 1e3:.3f} ms  "
              f"p99 {summary['latency_p99_s'] * 1e3:.3f} ms")

        for s in alice + bob:
            server.close_session(s)
    print(f"chrome trace written to {trace_path} "
          f"(serving track: pid 4, open chrome://tracing)")


if __name__ == "__main__":
    main()
