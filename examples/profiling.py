#!/usr/bin/env python3
"""Profiling an offloaded gemm with the repro.prof subsystem.

A ``#pragma omp target`` gemm runs on the simulated Jetson Nano with
activity recording enabled (``OmpiConfig(profile=...)`` — the same
machinery behind ``ompicc --profile`` and ``REPRO_PROFILE``).  The
recorder captures CUPTI-style typed records for every kernel launch,
transfer, module load and memory operation; this script then prints the
per-kernel metrics table (occupancy, coalescing, divergence, barriers),
the text summary, and writes a ``chrome://tracing`` JSON trace you can
open in a Chromium browser or Perfetto.

Run:  python3 examples/profiling.py [trace.json]
"""

import sys

from repro.bench.harness import run_ompi
from repro.bench.suite import get_app
from repro.prof.activity import ActivityRecorder
from repro.prof.chrome import write_chrome_trace
from repro.prof.metrics import format_metrics_table, kernel_metrics
from repro.prof.report import summary

N = 96


def main() -> None:
    trace_path = sys.argv[1] if len(sys.argv) > 1 else "gemm_trace.json"
    recorder = ActivityRecorder()
    print(f"profiling gemm (n={N}) on the simulated Jetson Nano ...\n")
    result, _machine = run_ompi(get_app("gemm"), N, profile=recorder)

    print("=== per-kernel metrics ===")
    print(format_metrics_table(kernel_metrics(recorder)))
    print()
    print(summary(recorder))
    print()

    kernels = recorder.records("kernel")
    modelled = sum(k.modelled_s for k in kernels)
    assert modelled == result.log.kernel_time, \
        "profiler kernel time must equal the event-log total"
    print(f"profiler kernel total ({modelled * 1e3:.3f} ms) matches the "
          f"timing/stats event log")

    path = write_chrome_trace(recorder, trace_path)
    print(f"chrome trace written to {path} "
          f"(open chrome://tracing or https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
