#!/usr/bin/env python3
"""Heterogeneous device backends: a Nano and a V100 in one registry.

``repro.devices`` names simulated backends (``nano``, ``nano4gb``,
``tx2``, ``v100``); a registry spec — ``OmpiConfig(devices="nano,v100")``,
``ompicc --devices nano,v100`` or ``REPRO_DEVICES`` — builds one device
module per named backend.  This example shows:

1. **mixed routing** — ``device(0)`` runs on the Nano, ``device(1)`` on
   the V100; kernels compile once (sm_53) and retarget to sm_70 at bind
   time, and the modelled times reflect each device's timing model;
2. **throughput-balanced sharding** — ``shard(2)`` splits the team
   space by per-device throughput (the V100 takes the lion's share)
   instead of equally; the merged result stays bit-identical to a
   single-Nano run while the modelled wall-clock drops.

Run:  python3 examples/heterogeneous.py
"""

import numpy as np

from repro.devices import BACKENDS
from repro.ompi.compiler import OmpiCompiler
from repro.ompi.config import OmpiConfig

N = 48

ROUTED = r'''
float x[4096], y[4096];

int main(void)
{
    int i;
    #pragma omp target teams distribute parallel for device(0) map(tofrom: x)
    for (i = 0; i < 4096; i++) x[i] = 2.0f * i;
    #pragma omp target teams distribute parallel for device(1) map(tofrom: y)
    for (i = 0; i < 4096; i++) y[i] = 3.0f * i;
    return 0;
}
'''

GEMM = r'''
float A[%N%][%N%], B[%N%][%N%], C[%N%][%N%];

int main(void)
{
    int i, j, k;
    #pragma omp target teams distribute parallel for num_teams(16) shard(2) \
        map(to: A, B) map(tofrom: C)
    for (i = 0; i < %N%; i++)
        for (j = 0; j < %N%; j++) {
            float acc = 0.0f;
            for (k = 0; k < %N%; k++)
                acc += A[i][k] * B[k][j];
            C[i][j] = acc;
        }
    return 0;
}
'''.replace("%N%", str(N))


def main() -> None:
    print("known backends:")
    seen = set()
    for backend in BACKENDS.values():
        if backend.name in seen:
            continue
        seen.add(backend.name)
        p = backend.props
        print(f"  {backend.name:8s} {p.arch}  "
              f"{p.multiprocessor_count:3d} SM x {p.cores_per_mp:3d} cores  "
              f"{p.memory_bandwidth_gbps:6.1f} GB/s  — {backend.description}")

    # 1. mixed device(k) routing
    prog = OmpiCompiler(OmpiConfig(profile=True)).compile(ROUTED, "routed")
    run = prog.run(devices="nano,v100")
    per_dev = {}
    for rec in run.profile.records():
        if rec.kind == "kernel":
            per_dev.setdefault(rec.device, 0.0)
            per_dev[rec.device] += rec.t_end - rec.t_start
    print("\nmixed routing (same kernel, one per device):")
    for k, mod in enumerate(run.ort.devices):
        t = per_dev.get(k, 0.0)
        print(f"  device({k}) = {mod.backend.name:5s} [{mod.backend.arch}]  "
              f"kernel time {t * 1e6:8.1f} us")

    # 2. throughput-balanced shard(2) vs the single-Nano baseline
    gemm = OmpiCompiler(OmpiConfig()).compile(GEMM, "gemm")
    single = gemm.run(num_devices=1)
    mixed = gemm.run(devices="nano,v100")
    c0 = single.machine.global_array("C")
    c1 = mixed.machine.global_array("C")
    print("\nsharded GEMM on nano+v100:")
    print(f"  bit-identical to single Nano: {np.array_equal(c0, c1)}")
    print(f"  modelled time: single nano {single.measured_time * 1e6:8.1f} us"
          f"  ->  mixed shard {mixed.measured_time * 1e6:8.1f} us")


if __name__ == "__main__":
    main()
