#!/usr/bin/env python3
"""Walk the full OMPi compilation chain (paper Fig. 2) stage by stage.

Shows every artifact the pipeline produces for a small program: the
transformed host C, the standalone CUDA kernel file, the PTX text, the
JIT/disk-cache behaviour of ptx mode, and the cubin default.

Run:  python3 examples/compiler_pipeline.py
"""

import tempfile

from repro.cuda.nvcc import compile_device
from repro.cuda.ptx.jit import JitCache
from repro.cuda.ptx.ptxwriter import module_to_ptx
from repro.ompi import OmpiCompiler, OmpiConfig

SOURCE = r'''
float v[4096];

int main(void)
{
    int i, n = 4096;
    #pragma omp target teams distribute parallel for \
        map(tofrom: v[0:n]) map(to: n) num_teams(16) num_threads(256)
    for (i = 0; i < n; i++)
        v[i] = 2.0f * v[i] + 1.0f;
    return 0;
}
'''


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("stage 1+2: transformation & analysis, code generation")
    program = OmpiCompiler().compile(SOURCE, "pipeline")
    print("--- transformed host program (excerpt) ---")
    host = program.host_source
    print("\n".join(host.splitlines()[:40]))
    print("...")

    banner("stage 3: the standalone GPU kernel file")
    kernel_text = program.kernel_sources["pipeline_kernel0"]
    print(kernel_text[:1400])

    banner("stage 4: device compilation — PTX mode (JIT + disk cache)")
    ptx_image = compile_device(kernel_text, "pipeline_kernel0", mode="ptx")
    print("--- PTX text (excerpt) ---")
    print(module_to_ptx(ptx_image.module)[:900])
    with tempfile.TemporaryDirectory() as tmp:
        cache = JitCache(tmp)
        run1 = program.run(jit_cache=cache)
        cfg = OmpiConfig(binary_mode="ptx")
        ptx_prog = OmpiCompiler(cfg).compile(SOURCE, "pipeline")
        run_cold = ptx_prog.run(jit_cache=cache)
        run_warm = ptx_prog.run(jit_cache=cache)
        jit_cold = [e for e in run_cold.log.events if e.kind == "jit"]
        jit_warm = [e for e in run_warm.log.events if e.kind == "jit"]
        print(f"\nptx first run : JIT {jit_cold[0].detail}, "
              f"{jit_cold[0].seconds * 1e3:.2f} ms")
        print(f"ptx second run: JIT {jit_warm[0].detail}, "
              f"{jit_warm[0].seconds * 1e3:.2f} ms  (ComputeCache hit)")

    banner("stage 4': cubin mode (the OMPi default: no runtime JIT)")
    run = program.run()
    print(f"jit events in cubin mode: {run.log.count('jit')} (expected 0)")
    print(f"modelled run time: {run.measured_time * 1e3:.3f} ms")
    v = run.machine.global_array("v")
    assert (v == 1.0).all()
    print("kernel result verified (v seeded with zeros -> all 1.0)")


if __name__ == "__main__":
    main()
