#!/usr/bin/env python3
"""Quickstart: compile and run the paper's Fig. 1 SAXPY example.

The OMPi compiler translates the OpenMP C program below into (a) a host C
program with runtime calls and (b) a standalone CUDA C kernel file, then
runs it on the simulated Jetson Nano 2GB: the host part executes under the
C interpreter, the kernel on the warp-accurate Maxwell GPU model.

Run:  python3 examples/quickstart.py
"""

import numpy as np

from repro.ompi import OmpiCompiler

SOURCE = r'''
float x[1000], y[1000];

/* Host function that performs SAXPY on the device (paper Fig. 1) */
void saxpy_device(float a, int size)
{
    #pragma omp target map(to: a,size,x[0:size]) map(tofrom: y[0:size])
    {
        int i;
        #pragma omp parallel for
        for (i = 0; i < size; i++)
            y[i] = a * x[i] + y[i];
    }
}

int main(void)
{
    int i;
    for (i = 0; i < 1000; i++) { x[i] = i; y[i] = 1.0f; }
    saxpy_device(2.5f, 1000);
    printf("y[0]   = %.1f\n", (double) y[0]);
    printf("y[999] = %.1f\n", (double) y[999]);
    return 0;
}
'''


def main() -> None:
    compiler = OmpiCompiler()
    program = compiler.compile(SOURCE, "saxpy")

    print("=== generated CUDA kernel file (excerpt) ===")
    kernel_text = program.kernel_sources["saxpy_kernel0"]
    start = kernel_text.find("struct vars_st0")
    print(kernel_text[start:start + 900])
    print("...\n")

    run = program.run()
    print("=== program output ===")
    print(run.stdout)

    y = run.machine.global_array("y")
    expected = 2.5 * np.arange(1000) + 1.0
    assert np.allclose(y, expected), "SAXPY result mismatch!"
    print("result verified against numpy")

    print("\n=== modelled Jetson Nano timing ===")
    for event in run.log.events:
        if event.kind in ("kernel", "memcpy_h2d", "memcpy_d2h", "launch_overhead"):
            print(f"  {event.kind:16s} {event.seconds * 1e6:9.1f} us "
                  f"{event.detail or ''} {event.kernel or ''}")
    print(f"  total (kernel + memory ops): {run.measured_time * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
