#!/bin/bash
cd /root/repo
python3 -m pytest benchmarks/ --benchmark-only 2>&1 | tee /root/repo/bench_output.txt
echo FINALBENCHDONE >> /root/repo/bench_output.txt
