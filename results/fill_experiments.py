import json
from repro.bench.report import render_markdown

data = json.load(open("results/figure4_full.json"))
order = ["3dconv", "bicg", "atax", "mvt", "gemm", "gramschmidt"]
md = render_markdown({k: data[k] for k in order if k in data})
text = open("EXPERIMENTS.md").read()
text = text.replace("<!-- FIG4_TABLES -->", md)
open("EXPERIMENTS.md", "w").write(text)
print("EXPERIMENTS.md updated")
