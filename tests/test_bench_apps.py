"""Tests for the benchmark suite: functional verification of every app
(CUDA and OMPi versions vs the sequential numpy reference) and harness
behaviour.  This is the repository's strongest end-to-end evidence: each
verification runs the full compiler + runtime + GPU-engine stack.
"""

import numpy as np
import pytest

from repro.bench.harness import run_app, run_cuda, run_ompi, verify_app
from repro.bench.suite import ALL_APPS, get_app, registry


def test_registry_matches_paper_panel_order():
    assert ALL_APPS == ("3dconv", "bicg", "atax", "mvt", "gemm", "gramschmidt")
    assert set(ALL_APPS) <= set(registry())
    from repro.bench.suite import EXTENDED_APP_NAMES
    assert set(EXTENDED_APP_NAMES) <= set(registry())


def test_categories_match_paper():
    # "one stencil application, four kernel applications ... one solver"
    cats = {name: get_app(name).category for name in ALL_APPS}
    assert cats["3dconv"] == "stencil"
    assert cats["gramschmidt"] == "solver"
    assert sum(1 for c in cats.values() if c == "kernel") == 4


def test_sizes_match_figure4_axes():
    assert get_app("3dconv").sizes == (32, 64, 128, 256, 384)
    assert get_app("bicg").sizes == (512, 1024, 2048, 4096, 8192)
    assert get_app("atax").sizes == (512, 1024, 2048, 4096, 8192)
    assert get_app("mvt").sizes == (512, 1024, 2048, 4096, 8192)
    assert get_app("gemm").sizes == (128, 256, 512, 1024, 2048)
    assert get_app("gramschmidt").sizes == (128, 256, 512, 1024, 2048)


def test_thread_geometries_match_paper():
    # "all applications use 32x8 threads, except for gramschmidt which is
    # fixed to use 256x1 ... and 3dconv which uses 2x4x32"
    assert get_app("gemm").block_shape == (32, 8, 1)
    assert get_app("bicg").block_shape == (32, 8, 1)
    assert get_app("gramschmidt").block_shape == (256, 1, 1)
    assert get_app("3dconv").block_shape == (32, 4, 2)


@pytest.mark.parametrize("name", ALL_APPS)
def test_functional_verification(name):
    """Both compiled versions reproduce the numpy reference exactly
    (within float32 accumulation tolerance)."""
    outcome = verify_app(get_app(name))
    assert outcome.ok_cuda, f"{name} CUDA: max rel err {outcome.max_err_cuda}"
    assert outcome.ok_ompi, f"{name} OMPi: max rel err {outcome.max_err_ompi}"


def test_cuda_and_ompi_agree_bit_for_bit():
    """Same op order on the same simulated hardware: the two versions
    should agree with each other even more tightly than with numpy."""
    app = get_app("bicg")
    n = 64
    _, m_cuda = run_cuda(app, n, launch_mode="full")
    _, m_ompi = run_ompi(app, n, launch_mode="full")
    for out in app.outputs:
        a = np.asarray(m_cuda.global_array(out))
        b = np.asarray(m_ompi.global_array(out))
        assert np.array_equal(a, b)


def test_measured_time_is_deterministic():
    app = get_app("gemm")
    r1 = run_app(app, 128, "ompi")
    r2 = run_app(app, 128, "ompi")
    assert r1.measured_s == r2.measured_s
    assert r1.runs == r2.runs          # jitter is seeded


def test_ten_run_protocol():
    r = run_app(get_app("gemm"), 128, "cuda")
    assert len(r.runs) == 10
    # "negligible variation among runs"
    assert np.std(r.runs) / np.mean(r.runs) < 0.02
    assert r.mean_s == pytest.approx(r.measured_s, rel=0.02)


def test_measured_time_grows_with_size():
    app = get_app("atax")
    small = run_app(app, 512, "cuda")
    big = run_app(app, 1024, "cuda")
    assert big.measured_s > small.measured_s


def test_ompi_tracks_cuda_closely():
    """The paper's headline: 'for all applications, ompi follows closely
    the performance of pure cuda'."""
    for name, n in (("gemm", 256), ("bicg", 512), ("3dconv", 32)):
        rc = run_app(get_app(name), n, "cuda")
        ro = run_app(get_app(name), n, "ompi")
        ratio = ro.measured_s / rc.measured_s
        assert 0.8 < ratio < 1.35, f"{name}@{n}: OMPi/CUDA = {ratio:.3f}"


def test_gramschmidt_is_the_slowest_app():
    """Fig. 4 shape: the solver dwarfs the kernels at comparable sizes."""
    gs = run_app(get_app("gramschmidt"), 256, "cuda")
    ge = run_app(get_app("gemm"), 256, "cuda")
    assert gs.measured_s > 3 * ge.measured_s


def test_launch_counts():
    r_gemm = run_app(get_app("gemm"), 128, "cuda")
    assert r_gemm.launches == 1
    r_bicg = run_app(get_app("bicg"), 512, "cuda")
    assert r_bicg.launches == 2
    n = 128
    r_gs = run_app(get_app("gramschmidt"), n, "cuda")
    assert r_gs.launches == 3 * n


@pytest.mark.parametrize("name", ("2dconv", "gesummv", "syrk", "2mm"))
def test_extended_suite_verifies(name):
    """'We get similar results with the rest of the applications in the
    suite' (§5): the extended set passes the same functional check."""
    outcome = verify_app(get_app(name))
    assert outcome.ok, (name, outcome)


def test_extended_suite_tracks_cuda():
    rc = run_app(get_app("gesummv"), 512, "cuda")
    ro = run_app(get_app("gesummv"), 512, "ompi")
    assert 0.8 < ro.measured_s / rc.measured_s < 1.35
