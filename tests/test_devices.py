"""Tests for the heterogeneous device-backend subsystem (repro.devices):
registry resolution, mixed ``device(k)`` routing, throughput-aware
``shard(n)`` planning, and per-arch compile-cache/image separation."""

import hashlib
import os

import numpy as np
import pytest

from repro.cfront.errors import InterpError
from repro.cuda.device import JETSON_NANO_GPU, TESLA_V100_GPU
from repro.cuda.driver import CudaDriver
from repro.cuda.errors import CudaError, CUresult
from repro.cuda.nvcc import compile_device
from repro.devices import (
    BACKENDS, ThroughputTracker, UnknownBackendError, get_backend,
    parse_devices, plan_shards, resolve_backends,
)
from repro.devices.throughput import equal_split
from repro.ompi.cache import CompileCache, config_fingerprint
from repro.ompi.compiler import OmpiCompiler
from repro.ompi.config import OmpiConfig


def compile_run(src, name="prog", config=None, **run_kw):
    prog = OmpiCompiler(config or OmpiConfig()).compile(src, name)
    return prog, prog.run(**run_kw)


def _digest(run, *names):
    h = hashlib.sha256()
    for name in names:
        h.update(run.machine.global_array(name).tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def test_known_backends_and_arch():
    assert get_backend("nano").arch == "sm_53"
    assert get_backend("tx2").arch == "sm_62"
    assert get_backend("v100").arch == "sm_70"
    assert get_backend("V100") is BACKENDS["v100"]  # case-insensitive
    assert BACKENDS["v100"].props is TESLA_V100_GPU


def test_unknown_backend_name_raises_listing_known():
    with pytest.raises(UnknownBackendError, match="sm90"):
        get_backend("sm90")
    with pytest.raises(UnknownBackendError, match="v100"):
        # the error message lists the known names
        get_backend("a100")
    with pytest.raises(UnknownBackendError):
        parse_devices("nano,,nope")


def test_parse_devices_accepts_spec_and_sequences():
    assert [b.name for b in parse_devices("nano,v100")] == ["nano", "v100"]
    assert [b.name for b in parse_devices(["tx2", BACKENDS["v100"]])] \
        == ["tx2", "v100"]
    with pytest.raises(UnknownBackendError, match="empty"):
        parse_devices("")


def test_resolve_backends_env_precedence(monkeypatch):
    monkeypatch.setenv("REPRO_DEVICES", "nano,tx2")
    assert [b.name for b in resolve_backends()] == ["nano", "tx2"]
    # an explicit argument wins over the environment
    assert [b.name for b in resolve_backends("v100")] == ["v100"]
    monkeypatch.delenv("REPRO_DEVICES")
    assert resolve_backends() is None


def test_v100_profile_and_calibration():
    b = get_backend("v100")
    assert b.props.multiprocessor_count == 80
    assert b.props.compute_capability == (7, 0)
    assert b.props.concurrent_kernels > 1
    # Volta: fp64 at 1:2 rate, not Maxwell's 1:32
    assert b.calibration.f64_penalty == 2.0
    assert get_backend("nano").calibration.f64_penalty == 32.0
    # the calibrated throughput hint orders the devices correctly
    assert b.calibrated_throughput() \
        > get_backend("tx2").calibrated_throughput() \
        > get_backend("nano").calibrated_throughput()


# ---------------------------------------------------------------------------
# shard planner
# ---------------------------------------------------------------------------

def test_plan_shards_uniform_matches_legacy_ceil_split():
    for total, n in [(8, 2), (10, 4), (3, 4), (0, 2), (7, 3), (64, 5)]:
        legacy = equal_split(total, n)
        assert plan_shards(total, None, n) == legacy
        assert plan_shards(total, [1.0] * n) == legacy
        assert plan_shards(total, [3.7] * n) == legacy


def test_plan_shards_weighted_contiguous_and_complete():
    for total, weights in [(100, [1, 9]), (8, [1, 60]), (17, [2, 3, 5]),
                           (1, [5, 1]), (12, [0.0, 1.0])]:
        ranges = plan_shards(total, weights)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == total
        for (_, hi), (lo2, _) in zip(ranges, ranges[1:]):
            assert hi == lo2  # contiguous, in device order
        counts = [hi - lo for lo, hi in ranges]
        assert sum(counts) == total
    # proportionality: a 9x faster device gets ~9x the blocks
    ranges = plan_shards(100, [1, 9])
    assert ranges == [(0, 10), (10, 100)]


def test_throughput_tracker_ewma():
    t = ThroughputTracker(hint=50.0)
    assert t.weight == 50.0          # calibrated hint before any launch
    t.note(10, 1.0)
    assert t.weight == 10.0          # first observation replaces the hint
    t.note(30, 1.0)
    assert 10.0 < t.weight < 30.0    # EWMA moves toward the new rate
    t.note(0, 1.0)                   # degenerate samples are ignored
    t.note(10, 0.0)
    assert t.samples == 2


# ---------------------------------------------------------------------------
# mixed device(k) routing
# ---------------------------------------------------------------------------

MIXED_SRC = r'''
int N = 128;
float a[128], b[128], c[128];
int main(void) {
  int i;
  for (i = 0; i < N; i++) { a[i] = i * 0.5f; b[i] = i * 0.25f; }
  #pragma omp target teams distribute parallel for map(to: a, b) map(from: c)
  for (i = 0; i < N; i++) c[i] = a[i] + b[i];
  #pragma omp target teams distribute parallel for device(1) \
      map(to: a) map(tofrom: b)
  for (i = 0; i < N; i++) b[i] = b[i] + a[i];
  return 0;
}
'''


def test_mixed_registry_device_routing_bit_identical():
    prog = OmpiCompiler(OmpiConfig(profile=True)).compile(MIXED_SRC, "mix")
    base = prog.run(num_devices=2)
    het = prog.run(devices="nano,v100")
    assert _digest(het, "a", "b", "c") == _digest(base, "a", "b", "c")
    assert [m.driver.device_props.arch for m in het.ort.devices] \
        == ["sm_53", "sm_70"]
    assert [m.backend.name for m in het.ort.devices] == ["nano", "v100"]
    # device(1) really ran on the V100: it recorded kernel activity
    devs_used = {r.device for r in het.profile.records()
                 if r.kind == "kernel"}
    assert devs_used == {0, 1}


def test_mixed_registry_out_of_range_device_raises():
    src = r'''
    float x[8];
    int main(void) {
      int i;
      #pragma omp target teams distribute parallel for device(5) \
          map(tofrom: x)
      for (i = 0; i < 8; i++) x[i] = 1.0f;
      return 0;
    }
    '''
    with pytest.raises(InterpError, match="invalid device number 5"):
        compile_run(src, config=OmpiConfig(devices="nano,v100"))


def test_run_devices_spec_rejects_unknown_backend():
    prog = OmpiCompiler(OmpiConfig()).compile(MIXED_SRC, "mix2")
    with pytest.raises(UnknownBackendError, match="turing"):
        prog.run(devices="nano,turing")


def test_repro_devices_env_builds_mixed_registry(monkeypatch):
    monkeypatch.setenv("REPRO_DEVICES", "nano,v100")
    prog = OmpiCompiler(OmpiConfig()).compile(MIXED_SRC, "mix3")
    run = prog.run()
    assert [m.backend.name for m in run.ort.devices] == ["nano", "v100"]
    base = prog.run(num_devices=2)
    assert _digest(run, "a", "b", "c") == _digest(base, "a", "b", "c")


# ---------------------------------------------------------------------------
# throughput-balanced shard(n)
# ---------------------------------------------------------------------------

SHARD_SRC = r'''
float a[48][48], b[48][48], c[48][48];
int main(void)
{
    int i, j, k;
    for (i = 0; i < 48; i++)
        for (j = 0; j < 48; j++) {
            a[i][j] = (float)((i + j) % 7) * 0.5f;
            b[i][j] = (float)((i * 3 + j * 5) % 11) - 4.0f;
            c[i][j] = 0.0f;
        }
    #pragma omp target teams distribute parallel for num_teams(16) shard(2) \
        map(to: a, b) map(tofrom: c)
    for (i = 0; i < 48; i++)
        for (j = 0; j < 48; j++) {
            float acc = 0.0f;
            for (k = 0; k < 48; k++)
                acc += a[i][k] * b[k][j];
            c[i][j] = acc;
        }
    return 0;
}
'''


def test_shard_throughput_bit_identical_to_equal_split(monkeypatch):
    prog = OmpiCompiler(OmpiConfig()).compile(SHARD_SRC, "sgemm")
    single = prog.run(num_devices=1)
    monkeypatch.setenv("REPRO_SHARD_BALANCE", "equal")
    eq = prog.run(devices="nano,v100")
    monkeypatch.setenv("REPRO_SHARD_BALANCE", "throughput")
    tp = prog.run(devices="nano,v100")
    assert _digest(single, "c") == _digest(eq, "c") == _digest(tp, "c")
    # the balanced run finishes sooner on the modelled timeline
    assert tp.measured_time < eq.measured_time


def test_shard_homogeneous_registry_keeps_legacy_split():
    prog = OmpiCompiler(OmpiConfig(profile=True)).compile(SHARD_SRC, "sgemm2")
    run = prog.run(num_devices=2)
    blocks = sorted(
        (r.device, r.grid) for r in run.profile.records()
        if r.kind == "kernel")
    # 16 teams, equal ceil split: both devices launch (global grid dims)
    assert {d for d, _ in blocks} == {0, 1}


def test_shard_weight_seeded_by_calibration_then_observed():
    from repro.devices.throughput import registry_weights
    prog = OmpiCompiler(OmpiConfig()).compile(SHARD_SRC, "sgemm3")
    run = prog.run(devices="nano,v100")
    nano, v100 = run.ort.devices
    # hints seed the plan: the V100 outweighs the Nano before and after
    w = registry_weights([nano.throughput, v100.throughput])
    assert w[1] > w[0]
    # any device that launched refined its estimate from observation
    assert any(mod.throughput.samples for mod in run.ort.devices)
    for mod in run.ort.devices:
        if mod.throughput.samples:
            assert mod.throughput.observed is not None
    # hint scale never mixes with observed scale in one weight vector
    a = ThroughputTracker(hint=1e11)
    b = ThroughputTracker(hint=7e12)
    b.note(8, 1e-3)
    assert registry_weights([a, b]) == [1e11, 7e12]
    a.note(2, 1e-3)
    assert registry_weights([a, b]) == [a.observed, b.observed]


def test_shard_devlost_on_mixed_registry_degrades_whole_region_to_host():
    # one shard device of a heterogeneous registry dies mid-shard(n):
    # the whole region must degrade to the host fallback bit-identically
    # — no half-sharded result assembled from a poisoned device.
    prog = OmpiCompiler(OmpiConfig()).compile(SHARD_SRC, "sgemm_lost")
    single = prog.run(num_devices=1)
    faulty = prog.run(
        devices="nano,v100",
        faults={1: "device_unavailable@cuLaunchKernel:count=1,sticky=1"})
    assert _digest(single, "c") == _digest(faulty, "c")
    nano, v100 = faulty.ort.devices
    # the v100 shard hit the sticky loss and the region fell back ...
    assert v100.lost
    assert v100.fault_stats["device_lost"] == 1
    assert v100.fault_stats["fallback"] == 1
    # ... while the healthy nano was neither faulted nor lost (dict
    # faults target exactly one ordinal)
    assert not nano.lost
    assert not nano.fault_stats


# ---------------------------------------------------------------------------
# per-arch compile-cache and image separation
# ---------------------------------------------------------------------------

KERNEL_SRC = r'''
float x[64];
int main(void) {
  int i;
  #pragma omp target teams distribute parallel for map(tofrom: x)
  for (i = 0; i < 64; i++) x[i] = x[i] + 1.0f;
  return 0;
}
'''


def test_compile_cache_keys_separate_arches():
    cfg53 = OmpiConfig(arch="sm_53")
    cfg70 = OmpiConfig(arch="sm_70")
    assert config_fingerprint(cfg53) != config_fingerprint(cfg70)
    cache = CompileCache()
    p53 = cache.get(KERNEL_SRC, "karch", cfg53)
    p70 = cache.get(KERNEL_SRC, "karch", cfg70)
    assert cache.misses == 2          # no cross-arch serving
    assert p53 is not p70
    k = p53.plans[0].kernel_name
    assert p53.images[k].arch == "sm_53"
    assert p70.images[k].arch == "sm_70"
    # and the sm_53 entry is a genuine hit for a second sm_53 request
    # (hits return a config-rebound copy sharing the compiled artifacts)
    again = cache.get(KERNEL_SRC, "karch", OmpiConfig(arch="sm_53"))
    assert again.images is p53.images
    assert cache.hits == 1


def test_driver_rejects_cross_arch_cubin():
    image = compile_device("__global__ void k(float *p) { }", "k",
                           mode="cubin", arch="sm_53")
    drv = CudaDriver(TESLA_V100_GPU)
    drv.cuInit(0)
    ctx = drv.cuDevicePrimaryCtxRetain(drv.cuDeviceGet(0))
    drv.cuCtxSetCurrent(ctx)
    with pytest.raises(CudaError) as exc:
        drv.cuModuleLoadData(image)
    assert exc.value.result == CUresult.CUDA_ERROR_INVALID_IMAGE


def test_bind_retargets_cubins_per_device_arch():
    prog = OmpiCompiler(OmpiConfig(arch="sm_53")).compile(KERNEL_SRC, "kb")
    run = prog.run(devices="nano,v100")
    k = prog.plans[0].kernel_name
    # the original sm_53 image is untouched; an sm_70 twin was memoised
    assert prog.images[k].arch == "sm_53"
    assert prog.images[f"{k}@sm_70"].arch == "sm_70"
    nano, v100 = run.ort.devices
    assert nano._images[k].arch == "sm_53"
    assert v100._images[k].arch == "sm_70"


def test_ptx_mode_images_are_arch_agnostic_across_registry():
    prog = OmpiCompiler(OmpiConfig(binary_mode="ptx")).compile(
        KERNEL_SRC, "kptx")
    base = prog.run(num_devices=2)
    het = prog.run(devices="nano,v100")
    assert _digest(het, "x") == _digest(base, "x")
    # no cubin retarget entries: the JIT keys on device arch instead
    assert all("@" not in name for name in prog.images)
