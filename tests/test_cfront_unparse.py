"""Tests for the unparser, including parse -> unparse -> parse stability."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfront.ctypes_ import (
    ArrayType, FLOAT, FunctionType, INT, PointerType, VOID,
)
from repro.cfront.parser import parse_expression, parse_translation_unit
from repro.cfront.unparse import declarator, unparse


def roundtrip(src):
    text1 = unparse(parse_translation_unit(src))
    text2 = unparse(parse_translation_unit(text1))
    assert text1 == text2
    return text1


def test_declarator_simple():
    assert declarator(INT, "x") == "int x"
    assert declarator(PointerType(FLOAT), "p") == "float *p"


def test_declarator_array():
    assert declarator(ArrayType(FLOAT, 10), "a") == "float a[10]"
    assert declarator(ArrayType(ArrayType(FLOAT, 3), 2), "a") == "float a[2][3]"


def test_declarator_pointer_to_array():
    t = PointerType(ArrayType(INT, 96))
    assert declarator(t, "x") == "int (*x)[96]"


def test_declarator_function_pointer():
    t = PointerType(FunctionType(VOID, (INT, FLOAT)))
    assert declarator(t, "cb") == "void (*cb)(int, float)"


def test_declarator_abstract():
    assert declarator(PointerType(ArrayType(INT, 96)), "") == "int (*)[96]"


def test_expression_precedence_parens():
    e = parse_expression("(a + b) * c")
    assert unparse(e) == "(a + b) * c"
    e2 = parse_expression("a + b * c")
    assert unparse(e2) == "a + b * c"


def test_negative_literal_spacing():
    e = parse_expression("- -x")
    text = unparse(e)
    assert "--" not in text
    assert unparse(parse_expression(text)) == text


def test_assignment_and_ternary():
    assert unparse(parse_expression("a = b ? c : d")) == "a = b ? c : d"


def test_kernel_launch_roundtrip():
    e = parse_expression("k<<<dim3(4, 2), 256>>>(p, n)")
    assert unparse(e) == "k<<<dim3(4, 2), 256>>>(p, n)"


def test_full_function_roundtrip():
    roundtrip("""
    float dot(float x[], float y[], int n)
    {
        int i;
        float s = 0.0f;
        for (i = 0; i < n; i++)
            s += x[i] * y[i];
        return s;
    }
    """)


def test_pragma_roundtrip():
    text = roundtrip("""
    void f(float y[], int n)
    {
        int i;
        #pragma omp target teams distribute parallel for map(tofrom: y[0:n])
        for (i = 0; i < n; i++)
            y[i] = 2.0f * y[i];
    }
    """)
    assert "#pragma omp target teams distribute parallel for" in text


def test_shared_struct_roundtrip():
    text = roundtrip("""
    __global__ void k(int (*x)[96])
    {
        __shared__ struct vars_st {
            int *i;
            int (*x)[96];
        } vars;
        vars.i = (int *) 0;
    }
    """)
    assert "__shared__ struct vars_st {" in text
    assert "int (*x)[96];" in text


def test_do_while_and_conditional_roundtrip():
    roundtrip("""
    int f(int n)
    {
        do {
            n = n > 2 ? n - 1 : n + 1;
        } while (n != 3 && n < 100);
        return n;
    }
    """)


def test_globals_and_prototypes_roundtrip():
    text = roundtrip("""
    int counter = 0;
    float xs[128];
    void saxpy(float a, float *x, int n);
    """)
    assert "int counter = 0;" in text
    assert "void saxpy(float a, float *x, int n);" in text


# A small expression grammar for property-based roundtrip testing.
_names = st.sampled_from(["a", "b", "c", "x", "y"])
_leaf = st.one_of(
    st.integers(min_value=0, max_value=999).map(str),
    _names,
)


def _binop(children):
    op = st.sampled_from(["+", "-", "*", "/", "%", "<<", ">>", "<", ">",
                          "==", "!=", "&", "^", "|", "&&", "||"])
    return st.tuples(children, op, children).map(lambda t: f"({t[0]} {t[1]} {t[2]})")


_expr_text = st.recursive(_leaf, _binop, max_leaves=20)


@settings(max_examples=100)
@given(_expr_text)
def test_property_expression_unparse_reparse_fixpoint(src):
    e1 = parse_expression(src)
    text1 = unparse(e1)
    e2 = parse_expression(text1)
    text2 = unparse(e2)
    assert text1 == text2
