"""Tests for the linear-memory substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import LinearMemory, MemoryError_


def test_alloc_returns_aligned_disjoint_blocks():
    mem = LinearMemory(1 << 16)
    a = mem.alloc(100, align=16)
    b = mem.alloc(50, align=16)
    assert a % 16 == 0 and b % 16 == 0
    assert b >= a + 100 or a >= b + 50


def test_alloc_zero_size_is_one_byte():
    mem = LinearMemory(1 << 12)
    a = mem.alloc(0)
    b = mem.alloc(0)
    assert a != b


def test_free_and_reuse():
    mem = LinearMemory(1 << 12)
    a = mem.alloc(256)
    mem.free(a)
    b = mem.alloc(256)
    assert b == a  # first fit reuses the hole


def test_double_free_raises():
    mem = LinearMemory(1 << 12)
    a = mem.alloc(8)
    mem.free(a)
    with pytest.raises(MemoryError_):
        mem.free(a)


def test_out_of_memory_raises():
    mem = LinearMemory(1 << 10)
    with pytest.raises(MemoryError_):
        mem.alloc(1 << 20)


def test_oom_after_fragmentation():
    mem = LinearMemory(1024, base=0x1000)
    blocks = [mem.alloc(128, align=1) for _ in range(8)]
    with pytest.raises(MemoryError_):
        mem.alloc(16, align=1)
    for b in blocks[::2]:
        mem.free(b)
    # freed 4x128 but not contiguous: a 256-byte request must fail
    with pytest.raises(MemoryError_):
        mem.alloc(256, align=1)
    mem.free(blocks[1])
    # now blocks 0,1,2 form a 384-byte hole
    assert mem.alloc(256, align=1) == blocks[0]


def test_scalar_store_load_roundtrip():
    mem = LinearMemory(1 << 12)
    a = mem.alloc(8)
    mem.store(a, np.float32, 3.25)
    assert mem.load(a, np.float32) == np.float32(3.25)
    mem.store(a, np.int32, -7)
    assert mem.load(a, np.int32) == -7


def test_store_narrowing_wraps_like_c():
    mem = LinearMemory(1 << 12)
    a = mem.alloc(1)
    mem.store(a, np.int8, 300)        # (char)300 == 44
    assert mem.load(a, np.int8) == 44
    mem.store(a, np.int8, -1)
    assert mem.load(a, np.uint8) == 255


def test_view_is_writable_window():
    mem = LinearMemory(1 << 12)
    a = mem.alloc(64)
    view = mem.view(a, 16, np.float32)
    view[:] = np.arange(16)
    assert mem.load(a + 4 * 5, np.float32) == 5.0


def test_gather_scatter_roundtrip():
    mem = LinearMemory(1 << 12)
    a = mem.alloc(128)
    addrs = a + 4 * np.array([3, 1, 4, 1, 5], dtype=np.int64)
    mem.scatter(addrs, np.int32, np.array([30, 10, 40, 11, 50]))
    got = mem.gather(addrs, np.int32)
    # lane 3 overwrote lane 1 (highest lane wins deterministically)
    assert list(got) == [30, 11, 40, 11, 50]


def test_gather_out_of_range_raises():
    mem = LinearMemory(1 << 10)
    with pytest.raises(MemoryError_):
        mem.gather(np.array([mem.base + mem.capacity], dtype=np.int64), np.int32)


def test_load_out_of_range_raises():
    mem = LinearMemory(64, base=0x100)
    with pytest.raises(MemoryError_):
        mem.load(0x100 + 64, np.int8)
    with pytest.raises(MemoryError_):
        mem.load(0x100 - 1, np.int8)


def test_copy_within():
    mem = LinearMemory(1 << 12)
    a = mem.alloc(32)
    b = mem.alloc(32)
    mem.view(a, 8, np.int32)[:] = np.arange(8)
    mem.copy_within(b, a, 32)
    assert list(mem.view(b, 8, np.int32)) == list(range(8))


def test_bytes_in_use_tracks_allocations():
    mem = LinearMemory(1 << 12)
    assert mem.bytes_in_use == 0
    a = mem.alloc(100)
    b = mem.alloc(28)
    assert mem.bytes_in_use == 128
    mem.free(a)
    assert mem.bytes_in_use == 28
    mem.free(b)
    assert mem.bytes_in_use == 0


@settings(max_examples=60)
@given(st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=40))
def test_property_allocations_never_overlap(sizes):
    mem = LinearMemory(1 << 16)
    spans = []
    for size in sizes:
        addr = mem.alloc(size, align=8)
        for other_addr, other_size in spans:
            assert addr + size <= other_addr or other_addr + other_size <= addr
        spans.append((addr, size))


@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=256), st.booleans()),
        min_size=1, max_size=30,
    )
)
def test_property_free_all_restores_full_capacity(ops):
    """After freeing everything, one maximal allocation must succeed again."""
    mem = LinearMemory(1 << 14, base=16)
    live = []
    for size, do_free in ops:
        live.append(mem.alloc(size, align=1))
        if do_free and live:
            mem.free(live.pop(0))
    for addr in live:
        mem.free(addr)
    assert mem.bytes_in_use == 0
    big = mem.alloc(mem.capacity, align=1)
    assert big == mem.base


@settings(max_examples=40)
@given(st.binary(min_size=1, max_size=200))
def test_property_copyin_copyout_roundtrip(data):
    mem = LinearMemory(1 << 12)
    addr = mem.alloc(len(data))
    mem.copy_in(addr, data)
    assert mem.copy_out(addr, len(data)) == data
