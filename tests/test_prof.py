"""Tests for the repro.prof observability subsystem (ISSUE 3).

Covers the CUPTI-style activity recorder (ring bounds, disabled-mode
zero emission, fastpath-independence of the record stream), the OMPT
callback registry, the Chrome-trace exporter, the per-kernel metrics
table, and the end-to-end wiring through OmpiConfig / the CLI.
"""

import json

import numpy as np
import pytest

from repro.bench.harness import run_ompi
from repro.bench.suite import get_app
from repro.cuda.device import JETSON_NANO_GPU
from repro.cuda.driver import CudaDriver
from repro.cuda.nvcc import compile_device
from repro.ompi import OmpiCompiler, OmpiConfig
from repro.prof.activity import (
    ActivityRecorder, KernelActivity, MemcpyActivity, resolve_profile,
)
from repro.prof.chrome import chrome_trace, write_chrome_trace
from repro.prof.metrics import format_metrics_table, kernel_metrics
from repro.prof.ompt import OMPT_EVENTS, OmptError, OmptRegistry
from repro.prof.report import summary

VADD_SRC = """
#include <stdio.h>
float a[256], b[256], c[256];
int main() {
    int i;
    for (i = 0; i < 256; i++) { a[i] = i; b[i] = 2 * i; }
    #pragma omp target map(to: a, b) map(from: c)
    #pragma omp teams distribute parallel for
    for (i = 0; i < 256; i++) c[i] = a[i] + b[i];
    printf("c[10]=%f\\n", c[10]);
    return 0;
}
"""

NOWAIT_SRC = """
float a[256], b[256];
int main() {
    int i;
    for (i = 0; i < 256; i++) { a[i] = i; b[i] = 0; }
    #pragma omp target map(tofrom: a) nowait depend(out: a)
    #pragma omp teams distribute parallel for
    for (i = 0; i < 256; i++) a[i] = a[i] * 2.0f;
    #pragma omp target map(to: a) map(from: b) nowait depend(in: a)
    #pragma omp teams distribute parallel for
    for (i = 0; i < 256; i++) b[i] = a[i] + 1.0f;
    #pragma omp taskwait
    return 0;
}
"""

SCALE_SRC = """
__global__ void scale(float *p, float a, int n)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) p[i] = a * p[i];
}
"""


def run_profiled(source, name="prog", fastpath=None, recorder=None):
    rec = recorder or ActivityRecorder()
    config = OmpiConfig(profile=rec, kernel_fastpath=fastpath)
    run = OmpiCompiler(config).compile(source, name).run()
    return rec, run


def make_driver(**kw):
    drv = CudaDriver(**kw)
    drv.cuInit(0)
    ctx = drv.cuDevicePrimaryCtxRetain(drv.cuDeviceGet(0))
    drv.cuCtxSetCurrent(ctx)
    return drv


# -- recorder core ------------------------------------------------------------

def test_ring_buffer_bounds_and_drop_count():
    rec = ActivityRecorder(capacity=4)
    for i in range(10):
        rec.emit(KernelActivity(name=f"k{i}"))
    assert len(rec) == 4
    assert rec.dropped == 6
    assert rec.emitted == 10
    # oldest-first loss: the retained records are the newest four
    assert [r.name for r in rec] == ["k6", "k7", "k8", "k9"]
    rec.clear()
    assert len(rec) == 0 and rec.dropped == 0 and rec.emitted == 0


def test_recorder_rejects_bad_capacity():
    with pytest.raises(ValueError):
        ActivityRecorder(capacity=0)


def test_record_filters_and_identity():
    rec = ActivityRecorder()
    rec.emit(KernelActivity(name="k", wall_s=1.23))
    rec.emit(MemcpyActivity(direction="h2d", nbytes=16))
    assert [r.kind for r in rec.records()] == ["kernel", "memcpy"]
    assert len(rec.records("kernel")) == 1
    ident = rec.records("kernel")[0].identity()
    assert "wall_s" not in ident
    assert ident["name"] == "k"
    assert rec.records("kernel")[0].to_dict()["wall_s"] == 1.23


def test_resolve_profile_specs(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    assert resolve_profile(None) == (None, None)
    assert resolve_profile(False) == (None, None)
    assert resolve_profile("off") == (None, None)
    rec, path = resolve_profile(True)
    assert isinstance(rec, ActivityRecorder) and path is None
    rec, path = resolve_profile(64)
    assert rec.capacity == 64
    rec, path = resolve_profile("trace.json")
    assert isinstance(rec, ActivityRecorder) and path == "trace.json"
    mine = ActivityRecorder()
    assert resolve_profile(mine) == (mine, None)
    monkeypatch.setenv("REPRO_PROFILE", "1")
    rec, path = resolve_profile(None)
    assert isinstance(rec, ActivityRecorder) and path is None
    monkeypatch.setenv("REPRO_PROFILE", "out.json")
    rec, path = resolve_profile(None)
    assert path == "out.json"


# -- zero emission when disabled ----------------------------------------------

def test_disabled_profiling_emits_nothing():
    config = OmpiConfig(profile=False)
    run = OmpiCompiler(config).compile(VADD_SRC, "vadd").run()
    assert run.profile is None
    assert run.ort.cudadev.driver.prof is None
    assert run.ort.cudadev.driver.streams.recorder is None


def test_driver_default_has_no_recorder():
    drv = make_driver()
    assert drv.prof is None
    ptr = drv.cuMemAlloc(64)
    drv.cuMemcpyHtoD(ptr, np.zeros(16, dtype=np.float32))
    drv.cuMemFree(ptr)  # all hooks must be silent no-ops


# -- fastpath independence -----------------------------------------------------

def test_records_identical_across_fastpath_modes():
    """REPRO_KERNEL_FASTPATH=on|off must emit identical record streams
    (modulo host wall-clock, which identity() strips)."""
    ids = {}
    for mode in ("on", "off"):
        rec, run = run_profiled(VADD_SRC, "vadd", fastpath=mode)
        assert "c[10]=30" in run.stdout
        ids[mode] = rec.identities()
    assert ids["on"] == ids["off"]
    kinds = [r["kind"] for r in ids["on"]]
    assert "kernel" in kinds and "kernel_exec" in kinds and "memcpy" in kinds


# -- driver-level records ------------------------------------------------------

def test_kernel_record_carries_launch_geometry_and_counters():
    drv = make_driver(profile=True)
    handle = drv.cuModuleLoadData(compile_device(SCALE_SRC, "m"))
    fn = drv.cuModuleGetFunction(handle, "scale")
    n = 256
    ptr = drv.cuMemAlloc(4 * n)
    drv.cuMemcpyHtoD(ptr, np.ones(n, dtype=np.float32))
    drv.cuLaunchKernel(fn, n // 32, 1, 1, 32, 1, 1,
                       kernel_params=[ptr, np.float32(2.0), np.int32(n)])
    (k,) = drv.prof.records("kernel")
    assert k.name == "scale"
    assert k.grid == (8, 1, 1) and k.block == (32, 1, 1)
    assert k.modelled_s > 0 and k.t_end > k.t_start
    assert k.instructions > 0 and k.global_transactions > 0
    assert k.bound in ("compute", "bandwidth", "latency")
    assert k.occupancy_warps > 0
    (x,) = drv.prof.records("kernel_exec")
    assert x.name == "scale" and x.blocks_run > 0 and x.warps_run > 0


def test_memcpy_records_have_bytes_and_bandwidth():
    drv = make_driver(profile=True)
    ptr = drv.cuMemAlloc(1 << 16)
    drv.cuMemcpyHtoD(ptr, np.zeros(1 << 14, dtype=np.float32))
    drv.cuMemcpyDtoH(ptr, 1 << 16)
    h2d, d2h = drv.prof.records("memcpy")
    assert (h2d.direction, d2h.direction) == ("h2d", "d2h")
    assert h2d.nbytes == d2h.nbytes == 1 << 16
    assert h2d.bandwidth_gbps > 0 and d2h.bandwidth_gbps > 0
    assert h2d.duration > 0


def test_memory_records_track_watermark():
    drv = make_driver(profile=True)
    a = drv.cuMemAlloc(1024)
    b = drv.cuMemAlloc(2048)
    drv.cuMemFree(a)
    drv.cuMemFree(b)
    recs = drv.prof.records("memory")
    assert [r.op for r in recs] == ["alloc", "alloc", "free", "free"]
    assert recs[1].in_use == 3072 and recs[1].peak == 3072
    assert recs[3].in_use == 0 and recs[3].peak == 3072


def test_stream_wait_records_only_real_stalls():
    drv = make_driver(profile=True)
    fast = drv.cuStreamCreate(flags=0x1)
    slow = drv.cuStreamCreate(flags=0x1)
    ptr = drv.cuMemAlloc(1 << 20)
    drv.cuMemcpyHtoDAsync(ptr, bytes(1 << 20), slow)
    ev = drv.cuEventCreate()
    drv.cuEventRecord(ev, slow)
    drv.cuStreamWaitEvent(fast, ev)      # fast is behind slow: real stall
    drv.cuStreamWaitEvent(fast, ev)      # already past the mark: no-op
    waits = drv.prof.records("stream_wait")
    assert len(waits) == 1
    assert waits[0].stream == fast and waits[0].event == ev
    assert waits[0].duration > 0


def test_task_records_cover_nowait_lifecycle():
    rec, _run = run_profiled(NOWAIT_SRC, "nowait")
    tasks = rec.records("task")
    ops = [t.op for t in tasks]
    assert ops.count("begin") == 2 and ops.count("end") == 2
    assert "taskwait" in ops
    second = [t for t in tasks if t.op == "begin"][1]
    assert second.preds == (1,)          # depend(in: a) after depend(out: a)
    assert second.stream is not None


# -- acceptance: modelled kernel time matches the event log --------------------

def test_summed_kernel_time_matches_event_log():
    rec, run = run_profiled(VADD_SRC, "vadd")
    total = sum(k.modelled_s for k in rec.records("kernel"))
    assert total == pytest.approx(run.log.kernel_time, rel=1e-12)


def test_gemm_profile_matches_stats(tmp_path):
    rec = ActivityRecorder()
    res, _m = run_ompi(get_app("gemm"), 64, profile=rec)
    kernels = rec.records("kernel")
    assert kernels, "gemm run must emit kernel records"
    assert sum(k.modelled_s for k in kernels) == pytest.approx(
        res.log.kernel_time, rel=1e-12)
    assert rec.records("memcpy")
    trace = chrome_trace(rec)
    json.dumps(trace)  # must be serialisable


# -- OMPT registry -------------------------------------------------------------

def test_ompt_registry_dispatch_and_errors():
    reg = OmptRegistry()
    assert not reg.active
    seen = []
    reg.set_callback("submit", lambda **kw: seen.append(kw))
    assert reg.active
    reg.dispatch("submit", kernel="k", teams=(1, 1, 1))
    assert seen == [{"event": "submit", "kernel": "k", "teams": (1, 1, 1)}]
    with pytest.raises(OmptError):
        reg.set_callback("no_such_event", lambda **kw: None)
    fn = reg.callbacks("submit")[0]
    reg.remove_callback("submit", fn)
    assert not reg.active
    with pytest.raises(OmptError):
        reg.remove_callback("submit", fn)


def test_ompt_callbacks_fire_in_order():
    order = []

    def cb(event, **kw):
        order.append((event, kw.get("kernel")))

    config = OmpiConfig()
    prog = OmpiCompiler(config).compile(VADD_SRC, "vadd")
    run = prog.run(ompt={e: cb for e in OMPT_EVENTS})
    assert "c[10]=30" in run.stdout
    events = [e for e, _ in order]
    # two to-maps + one from-map alloc, then the target region bracketing
    # the device submit, transfers, and the unmaps
    assert events.count("target_begin") == 1
    assert events.count("target_end") == 1
    assert events.count("submit") == 1
    assert events.index("target_begin") < events.index("submit")
    assert events.index("submit") < events.index("target_end")
    datops = [kw for e, kw in order if e == "submit"]
    assert datops == ["vadd_kernel0"]
    assert events.count("data_op") >= 6  # 3 allocs + transfers + 3 deletes


# -- chrome trace --------------------------------------------------------------

def test_chrome_trace_schema(tmp_path):
    rec, _run = run_profiled(VADD_SRC, "vadd")
    path = tmp_path / "trace.json"
    write_chrome_trace(rec, path)
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert isinstance(events, list) and events
    names_by_ph = {}
    for ev in events:
        assert {"ph", "pid", "name"} <= set(ev)
        if ev["ph"] == "X":
            assert "tid" in ev and ev["dur"] >= 0 and "ts" in ev
        names_by_ph.setdefault(ev["ph"], []).append(ev["name"])
    # track metadata + kernel/memcpy spans must be present
    assert "process_name" in names_by_ph.get("M", [])
    spans = names_by_ph.get("X", [])
    assert any("kernel0" in n for n in spans)
    assert any("HtoD" in n or "h2d" in n for n in spans)


def test_chrome_trace_has_stream_and_engine_tracks():
    rec, _run = run_profiled(NOWAIT_SRC, "nowait")
    doc = chrome_trace(rec)
    kernel_events = [ev for ev in doc["traceEvents"]
                     if ev.get("cat") == "kernel"]
    pids = {ev["pid"] for ev in kernel_events}
    assert len(pids) == 2  # each kernel appears on its stream AND its engine


# -- metrics + report ----------------------------------------------------------

def test_metrics_table_contents():
    rec, _run = run_profiled(VADD_SRC, "vadd")
    metrics = kernel_metrics(rec)
    assert len(metrics) == 1
    m = metrics[0]
    assert m.name == "vadd_kernel0" and m.launches == 1
    assert 0 < m.coalescing_efficiency <= 1
    assert 0 <= m.divergence_ratio <= 1
    table = format_metrics_table(metrics)
    assert "vadd_kernel0" in table and "coalesce" in table


def test_summary_report_sections():
    rec, _run = run_profiled(VADD_SRC, "vadd")
    text = summary(rec)
    assert "kernel time (modelled)" in text
    assert "HtoD" in text and "DtoH" in text
    assert "device memory peak" in text
    assert "vadd_kernel0" in text


def test_summary_of_empty_recorder():
    assert "no activity recorded" in summary(ActivityRecorder())


# -- CLI ------------------------------------------------------------------------

def test_cli_profile_flag_writes_trace(tmp_path, capsys):
    from repro.ompi.cli import main
    src = tmp_path / "vadd.c"
    src.write_text(VADD_SRC)
    trace = tmp_path / "trace.json"
    assert main([str(src), "--profile", str(trace)]) == 0
    doc = json.loads(trace.read_text())
    assert doc["traceEvents"]
    err = capsys.readouterr().err
    assert "repro.prof summary" in err
    assert "chrome trace written" in err
