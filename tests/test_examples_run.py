"""The examples are part of the public API surface: run them as tests so
they cannot rot.  (cuda_vs_openmp is exercised with a reduced size.)"""

import runpy
import sys

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/masterworker_inspect.py",
    "examples/data_environments.py",
    "examples/compiler_pipeline.py",
    "examples/async_overlap.py",
    "examples/fault_tolerance.py",
    "examples/multi_device.py",
]


@pytest.mark.parametrize("path", EXAMPLES)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()          # every example narrates what it did


def test_profiling_example(capsys, monkeypatch, tmp_path):
    trace = tmp_path / "trace.json"
    monkeypatch.setattr(sys, "argv", ["examples/profiling.py", str(trace)])
    runpy.run_path("examples/profiling.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "per-kernel metrics" in out
    assert "matches the timing/stats event log" in out
    assert trace.exists()


def test_serving_example(capsys, monkeypatch, tmp_path):
    trace = tmp_path / "serving_trace.json"
    monkeypatch.setattr(sys, "argv", ["examples/serving.py", str(trace)])
    runpy.run_path("examples/serving.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "warm-state reuse" in out
    assert "both verified" in out
    assert trace.exists()


def test_serving_resilience_example(capsys, monkeypatch, tmp_path):
    trace = tmp_path / "resilience_trace.json"
    monkeypatch.setattr(sys, "argv",
                        ["examples/serving_resilience.py", str(trace)])
    runpy.run_path("examples/serving_resilience.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "failed over to device 1" in out
    assert "result verified bit-identical" in out
    assert "unmeetable deadline rejected at admission" in out
    assert trace.exists()


def test_cuda_vs_openmp_example_small(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/cuda_vs_openmp.py", "96"])
    runpy.run_path("examples/cuda_vs_openmp.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "OMPi/CUDA ratio" in out
