"""Tests for extension features: declare-target globals, device
generalisation (other Jetson boards), the preliminary OpenCL module."""

import numpy as np
import pytest

from repro.cuda.device import JETSON_NANO_4GB_GPU, JETSON_NANO_GPU, JETSON_TX2_GPU
from repro.ompi import OmpiCompiler, OmpiConfig
from repro.ompi.codegen_opencl import OpenCLXformError, opencl_kernel_source

DT_SRC = r'''
#pragma omp declare target
float scalebuf[4];
#pragma omp end declare target

float v[64];

int main(void)
{
    int i, n = 64;
    for (i = 0; i < 4; i++) scalebuf[i] = 2.0f + i;
    #pragma omp target update to(scalebuf[0:4])
    #pragma omp target teams distribute parallel for map(tofrom: v[0:n], n) \
        num_teams(1) num_threads(64)
    for (i = 0; i < n; i++)
        v[i] = v[i] * scalebuf[i % 4];
    return 0;
}
'''


def test_declare_target_global_device_resident():
    prog = OmpiCompiler().compile(DT_SRC, "dtg")
    run = prog.run(seed_arrays={"v": np.ones(64, dtype=np.float32)})
    v = run.machine.global_array("v")
    expect = np.tile([2.0, 3.0, 4.0, 5.0], 16).astype(np.float32)
    assert np.allclose(v, expect)


def test_declare_target_global_in_kernel_file():
    prog = OmpiCompiler().compile(DT_SRC, "dtg")
    text = prog.kernel_sources["dtg_kernel0"]
    assert "__device__ float scalebuf[4];" in text


def test_declare_target_update_from_device():
    src = r'''
    #pragma omp declare target
    int counter[1];
    #pragma omp end declare target
    int main(void)
    {
        int i;
        #pragma omp target teams distribute parallel for num_teams(1) num_threads(32)
        for (i = 0; i < 32; i++)
        {
            #pragma omp atomic
            counter[0] += 1;
        }
        #pragma omp target update from(counter[0:1])
        return 0;
    }
    '''
    prog = OmpiCompiler().compile(src, "dtc")
    run = prog.run()
    assert run.machine.global_array("counter")[0] == 32


SAXPY = r'''
float x[4096], y[4096];
int main(void)
{
    int i, n = 4096;
    #pragma omp target teams distribute parallel for \
        map(to: x[0:n], n) map(tofrom: y[0:n]) num_teams(16) num_threads(256)
    for (i = 0; i < n; i++)
        y[i] = 2.0f * x[i] + y[i];
    return 0;
}
'''


def test_module_generalises_to_other_boards():
    """Paper §4.2: 'the module has been designed to be quite general so
    that it can be adapted to support other cuda-based gpus as well' —
    same program, three boards."""
    # ptx mode so one build runs on every architecture (cubins are per-sm)
    prog = OmpiCompiler(OmpiConfig(binary_mode="ptx")).compile(SAXPY, "gen")
    seed = {"x": np.arange(4096, dtype=np.float32),
            "y": np.ones(4096, dtype=np.float32)}
    times = {}
    for board in (JETSON_NANO_GPU, JETSON_NANO_4GB_GPU, JETSON_TX2_GPU):
        run = prog.run(device=board, seed_arrays=seed)
        assert np.allclose(run.machine.global_array("y"),
                           2.0 * np.arange(4096) + 1)
        times[board.name] = run.measured_time
        assert run.ort.cudadev.attributes["MULTIPROCESSOR_COUNT"] == \
            board.multiprocessor_count
    # identical silicon, identical time; the TX2 is faster
    nano2, nano4, tx2 = times.values()
    assert nano2 == pytest.approx(nano4)
    assert tx2 < nano2


def test_tx2_cubin_needs_matching_arch():
    from repro.cuda.errors import CudaError
    prog = OmpiCompiler(OmpiConfig(arch="sm_62")).compile(SAXPY, "gen62")
    seed = {"x": np.zeros(4096, dtype=np.float32),
            "y": np.zeros(4096, dtype=np.float32)}
    run = prog.run(device=JETSON_TX2_GPU, seed_arrays=seed)   # works
    with pytest.raises(CudaError):
        prog.run(device=JETSON_NANO_GPU, seed_arrays=seed)    # sm mismatch


def test_ptx_mode_is_architecture_portable():
    prog = OmpiCompiler(OmpiConfig(binary_mode="ptx")).compile(SAXPY, "genptx")
    seed = {"x": np.zeros(4096, dtype=np.float32),
            "y": np.ones(4096, dtype=np.float32)}
    for board in (JETSON_NANO_GPU, JETSON_TX2_GPU):
        run = prog.run(device=board, seed_arrays=seed)
        assert (run.machine.global_array("y") == 1.0).all()


# -- preliminary OpenCL module -------------------------------------------------

def test_opencl_codegen_combined():
    prog = OmpiCompiler().compile(SAXPY, "ocl")
    text = opencl_kernel_source(prog.plans[0])
    assert "__kernel void ocl_kernel0(" in text
    assert "__global float *x" in text
    assert "cudadev_get_distribute_chunk" in text
    assert "threadIdx" not in text and "blockIdx" not in text


def test_opencl_codegen_rejects_masterworker():
    src = r'''
    float y[64];
    int main(void)
    {
        #pragma omp target map(tofrom: y)
        {
            int i;
            #pragma omp parallel for
            for (i = 0; i < 64; i++) y[i] = 1.0f;
        }
        return 0;
    }
    '''
    prog = OmpiCompiler().compile(src, "oclmw")
    with pytest.raises(OpenCLXformError):
        opencl_kernel_source(prog.plans[0])
