"""Persistent on-disk compile cache (repro.ompi.diskcache).

Covers the disk tier's contract: cold/warm round-trips across fresh
in-memory caches (simulating separate processes), corrupted-entry
recovery, schema-version mismatch behaviour, LRU size-bound eviction
and cross-process flock serialisation.
"""

from __future__ import annotations

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.ompi import diskcache
from repro.ompi.cache import CompileCache, source_key
from repro.ompi.config import OmpiConfig
from repro.ompi.diskcache import SCHEMA_VERSION, DiskCompileCache

SRC = r"""
#include <stdio.h>
float a[16];
int main(void) {
    int i; float s = 0.0f;
    for (i = 0; i < 16; i++) a[i] = i * 0.5f;
    #pragma omp target teams distribute parallel for map(tofrom: a[0:16])
    for (i = 0; i < 16; i++) a[i] = a[i] + 1.0f;
    for (i = 0; i < 16; i++) s += a[i];
    printf("%f\n", s);
    return 0;
}
"""


def _variant(tag: int) -> str:
    return SRC.replace("+ 1.0f", f"+ {tag}.0f")


def test_cold_then_warm_round_trip(tmp_path):
    root = tmp_path / "store"
    c1 = CompileCache(disk=DiskCompileCache(root))
    p1 = c1.get(SRC, "t")
    assert c1.compiles == 1 and c1.disk_hits == 0

    # a fresh in-memory cache over the same store: pure disk hit
    c2 = CompileCache(disk=DiskCompileCache(root))
    p2 = c2.get(SRC, "t")
    assert c2.compiles == 0 and c2.disk_hits == 1
    assert p2.host_source == p1.host_source
    assert sorted(p2.images) == sorted(p1.images)

    r1, r2 = p1.run(), p2.run()
    assert r1.stdout == r2.stdout
    assert r1.log.measured_time == r2.log.measured_time


def test_deserialized_program_carries_callers_config(tmp_path):
    disk = DiskCompileCache(tmp_path / "store")
    CompileCache(disk=disk).get(SRC, "t")
    cfg = OmpiConfig(host_fastpath="verify")
    prog = CompileCache(disk=disk).get(SRC, "t", cfg)
    assert prog.config.host_fastpath == "verify"


def test_runtime_knobs_share_one_disk_entry(tmp_path):
    """host_fastpath (a runtime knob) stays out of the key: compiling
    under 'off' then requesting 'on' must be a disk hit, not a compile."""
    disk = DiskCompileCache(tmp_path / "store")
    CompileCache(disk=disk).get(SRC, "t", OmpiConfig(host_fastpath="off"))
    warm = CompileCache(disk=disk)
    warm.get(SRC, "t", OmpiConfig(host_fastpath="on"))
    assert warm.compiles == 0 and warm.disk_hits == 1
    assert len(disk) == 1


def test_corrupted_entry_recovers_by_recompiling(tmp_path):
    disk = DiskCompileCache(tmp_path / "store")
    cold = CompileCache(disk=disk)
    cold.get(SRC, "t")
    key = source_key(SRC, "t", OmpiConfig())
    disk.path_for(key).write_bytes(b"\x00garbage, not a pickle")

    warm = CompileCache(disk=DiskCompileCache(tmp_path / "store"))
    warm.get(SRC, "t")
    assert warm.compiles == 1  # fell back to a real compile
    assert warm.disk.corrupt_dropped == 1
    # the rewritten entry is healthy again
    again = CompileCache(disk=DiskCompileCache(tmp_path / "store"))
    again.get(SRC, "t")
    assert again.compiles == 0 and again.disk_hits == 1


def test_truncated_entry_recovers(tmp_path):
    disk = DiskCompileCache(tmp_path / "store")
    CompileCache(disk=disk).get(SRC, "t")
    key = source_key(SRC, "t", OmpiConfig())
    path = disk.path_for(key)
    path.write_bytes(path.read_bytes()[: 64])
    warm = CompileCache(disk=DiskCompileCache(tmp_path / "store"))
    warm.get(SRC, "t")
    assert warm.compiles == 1 and warm.disk.corrupt_dropped == 1


def test_schema_version_mismatch_recompiles(tmp_path, monkeypatch):
    root = tmp_path / "store"
    CompileCache(disk=DiskCompileCache(root)).get(SRC, "t")

    # a future schema looks in a different subdirectory: clean miss
    monkeypatch.setattr(diskcache, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
    newer = CompileCache(disk=DiskCompileCache(root))
    newer.get(SRC, "t")
    assert newer.compiles == 1 and newer.disk_hits == 0

    # an entry whose *header* carries the wrong version (e.g. copied
    # between stores) is dropped as corrupt, never unpickled into use
    monkeypatch.setattr(diskcache, "SCHEMA_VERSION", SCHEMA_VERSION)
    disk = DiskCompileCache(root)
    key = source_key(SRC, "t", OmpiConfig())
    payload = pickle.loads(disk.path_for(key).read_bytes())
    forged = (payload[0], SCHEMA_VERSION + 1) + payload[2:]
    disk.path_for(key).write_bytes(pickle.dumps(forged))
    assert disk.load(key) is None
    assert disk.corrupt_dropped == 1


def test_foreign_object_under_key_is_a_miss(tmp_path):
    disk = DiskCompileCache(tmp_path / "store")
    key = source_key(SRC, "t", OmpiConfig())
    disk.store(key, {"not": "a program"})
    cache = CompileCache(disk=disk)
    cache.get(SRC, "t")
    assert cache.compiles == 1 and cache.disk_hits == 0


def test_lru_eviction_bounds_store_size(tmp_path):
    disk = DiskCompileCache(tmp_path / "store")
    CompileCache(disk=disk).get(_variant(1), "t")
    entry_bytes = disk.size_bytes
    assert entry_bytes > 0

    # room for roughly two entries; insert three
    disk.max_bytes = int(entry_bytes * 2.5)
    keys = []
    for tag in (1, 2, 3):
        src = _variant(tag)
        CompileCache(disk=disk).get(src, "t")
        keys.append(source_key(src, "t", OmpiConfig()))
        # deterministic mtime order even on coarse filesystems
        import os
        os.utime(disk.path_for(keys[-1]), (tag, tag))
        disk._evict_over_bound(keep=disk.path_for(keys[-1]))

    assert disk.size_bytes <= disk.max_bytes
    assert disk.evictions >= 1
    assert not disk.path_for(keys[0]).exists()   # oldest evicted
    assert disk.path_for(keys[2]).exists()       # newest kept


def test_loads_refresh_lru_recency(tmp_path):
    import os
    disk = DiskCompileCache(tmp_path / "store")
    k1 = source_key(_variant(1), "t", OmpiConfig())
    k2 = source_key(_variant(2), "t", OmpiConfig())
    CompileCache(disk=disk).get(_variant(1), "t")
    CompileCache(disk=disk).get(_variant(2), "t")
    os.utime(disk.path_for(k1), (1, 1))
    os.utime(disk.path_for(k2), (2, 2))
    assert disk.load(k1) is not None  # touch: k1 becomes the newest
    disk.max_bytes = disk.size_bytes - 1
    disk._evict_over_bound()
    assert disk.path_for(k1).exists()
    assert not disk.path_for(k2).exists()


def _hammer(root: str, tag: int, rounds: int, out):
    try:
        for i in range(rounds):
            cache = CompileCache(disk=DiskCompileCache(root))
            prog = cache.get(_variant(tag + (i % 2)), "t")
            assert prog.run().exit_code == 0
        out.put(("ok", tag))
    except Exception as exc:  # pragma: no cover - failure reporting
        out.put(("fail", f"{tag}: {exc!r}"))


def test_concurrent_processes_share_one_store(tmp_path):
    """N processes compile/load the same keys concurrently; flock keeps
    every entry either absent or complete, so nobody ever observes a
    torn pickle."""
    root = str(tmp_path / "store")
    ctx = multiprocessing.get_context("fork")
    out = ctx.Queue()
    procs = [ctx.Process(target=_hammer, args=(root, tag, 3, out))
             for tag in (1, 2, 1, 2)]
    for p in procs:
        p.start()
    results = [out.get(timeout=120) for _ in procs]
    for p in procs:
        p.join(timeout=120)
    assert all(status == "ok" for status, _ in results), results
    # and the store is still healthy afterwards
    warm = CompileCache(disk=DiskCompileCache(root))
    warm.get(_variant(1), "t")
    assert warm.compiles == 0 and warm.disk_hits == 1


def test_from_env_requires_opt_in(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert DiskCompileCache.from_env() is None
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
    disk = DiskCompileCache.from_env()
    assert disk is not None and disk.root == tmp_path / "c"


def test_stats_shape(tmp_path):
    disk = DiskCompileCache(tmp_path / "store", max_bytes=123)
    cache = CompileCache(disk=disk)
    cache.get(SRC, "t")
    s = cache.stats
    assert s["compiles"] == 1
    assert s["disk_hits"] == 0 and s["disk_misses"] == 1
    assert s["disk"]["entries"] == 1 and s["disk"]["stores"] == 1
    assert s["disk"]["max_bytes"] == 123


def test_degraded_lock_is_counted_not_silent(tmp_path):
    root = tmp_path / "store"
    disk = DiskCompileCache(root)
    # make the lock sentinel unopenable: a directory where the file goes
    (root / ".lock").mkdir(parents=True)
    cache = CompileCache(disk=disk)
    cache.get(SRC, "t")             # load (miss) + store, both degraded
    assert disk.lock_degraded >= 2
    assert cache.stats["disk"]["lock_degraded"] == disk.lock_degraded
    # the store still works unlocked: a fresh cache gets a disk hit
    c2 = CompileCache(disk=DiskCompileCache(root))
    c2.get(SRC, "t")
    assert c2.disk_hits == 1


def test_memory_tier_still_wins_when_warm(tmp_path):
    disk = DiskCompileCache(tmp_path / "store")
    cache = CompileCache(disk=disk)
    cache.get(SRC, "t")
    cache.get(SRC, "t")
    assert cache.hits == 1 and cache.disk_hits == 0


def test_disk_cached_program_is_functionally_identical(tmp_path):
    """A program round-tripped through the pickle store produces the
    same memory image as a fresh compile (paranoia for AST pickling)."""
    disk = DiskCompileCache(tmp_path / "store")
    p_fresh = CompileCache().get(SRC, "t")
    CompileCache(disk=disk).get(SRC, "t")
    p_disk = CompileCache(disk=disk).get(SRC, "t")
    r_fresh, r_disk = p_fresh.run(), p_disk.run()
    a = np.asarray(r_fresh.machine.global_array("a"))
    b = np.asarray(r_disk.machine.global_array("a"))
    assert np.array_equal(a, b)


@pytest.mark.parametrize("mode", ["on", "off", "verify"])
def test_disk_cached_program_runs_under_every_host_fastpath(tmp_path, mode):
    disk = DiskCompileCache(tmp_path / "store")
    CompileCache(disk=disk).get(SRC, "t")
    cache = CompileCache(disk=disk)
    prog = cache.get(SRC, "t", OmpiConfig(host_fastpath=mode))
    assert cache.disk_hits == 1
    run = prog.run()
    assert run.exit_code == 0
    assert run.stdout.startswith("76.0")
