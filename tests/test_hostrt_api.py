"""Tests for the host runtime: teams, ICVs, omp_* API, device registry."""

import numpy as np
import pytest

from repro.hostrt.team import HostTeamError, TeamStack
from repro.ompi import OmpiCompiler


def compile_run(src, name="prog"):
    prog = OmpiCompiler().compile(src, name)
    return prog, prog.run()


# -- TeamStack unit behaviour ------------------------------------------------

def test_team_stack_defaults():
    teams = TeamStack(default_nthreads=4)
    assert teams.thread_num() == 0
    assert teams.num_threads() == 1


def test_static_bounds_partition_exactly():
    from repro.hostrt.team import TeamCtx
    teams = TeamStack()
    for nthreads in (1, 3, 4, 7):
        covered = []
        for tid in range(nthreads):
            teams.stack.append(TeamCtx(nthreads, tid))
            lo, hi = teams.static_bounds(0, 103)
            covered.extend(range(lo, hi))
            teams.stack.pop()
        assert sorted(covered) == list(range(103))


def test_static_bounds_outside_parallel_is_whole_range():
    teams = TeamStack()
    assert teams.static_bounds(5, 50) == (5, 50)


# -- host omp API through translated programs ---------------------------------

def test_host_api_values():
    src = r'''
    int vals[6];
    int main(void)
    {
        vals[0] = omp_get_num_devices();
        vals[1] = omp_get_initial_device();
        vals[2] = omp_get_default_device();
        vals[3] = omp_is_initial_device();
        vals[4] = omp_get_max_threads();
        vals[5] = omp_get_num_procs();
        return 0;
    }
    '''
    _, run = compile_run(src)
    ndev = run.ort.num_devices  # honours REPRO_NUM_DEVICES (default 1)
    vals = list(run.machine.global_array("vals"))
    assert vals[0] == ndev       # the offload device registry
    assert vals[1] == ndev       # initial device id = num_devices
    assert vals[2] == 0          # default device is the (first) GPU
    assert vals[3] == 1          # host code runs on the initial device
    assert vals[4] == 4          # quad-core A57
    assert vals[5] == 4


def test_set_default_device_to_host():
    src = r'''
    float y[64];
    int main(void)
    {
        int i;
        omp_set_default_device(omp_get_initial_device());
        #pragma omp target teams distribute parallel for map(tofrom: y[0:64])
        for (i = 0; i < 64; i++) y[i] = 5.0f;
        return 0;
    }
    '''
    _, run = compile_run(src)
    assert (run.machine.global_array("y") == 5.0).all()
    assert run.log.count("kernel") == 0     # ran as host fallback


def test_omp_set_num_threads():
    src = r'''
    int count[1];
    int main(void)
    {
        omp_set_num_threads(3);
        #pragma omp parallel
        {
            count[omp_get_thread_num()] = omp_get_num_threads();
        }
        return 0;
    }
    '''
    _, run = compile_run(src)
    assert run.machine.global_array("count")[0] == 3


def test_host_parallel_firstprivate():
    src = r'''
    int out[4];
    int main(void)
    {
        int base = 100;
        #pragma omp parallel num_threads(4) firstprivate(base)
        {
            base = base + omp_get_thread_num();
            out[omp_get_thread_num()] = base;
        }
        return 0;
    }
    '''
    _, run = compile_run(src)
    assert list(run.machine.global_array("out")) == [100, 101, 102, 103]


def test_host_parallel_shared_writeback():
    src = r'''
    int total[1];
    int main(void)
    {
        int acc = 0;
        #pragma omp parallel num_threads(4)
        {
            #pragma omp critical
            { acc = acc + 1; }
        }
        total[0] = acc;
        return 0;
    }
    '''
    _, run = compile_run(src)
    assert run.machine.global_array("total")[0] == 4


def test_host_parallel_for_schedule_covers_space():
    src = r'''
    int hits[997];
    int main(void)
    {
        int i;
        #pragma omp parallel for num_threads(4)
        for (i = 0; i < 997; i++)
            hits[i] += 1;
        return 0;
    }
    '''
    _, run = compile_run(src)
    assert (run.machine.global_array("hits") == 1).all()


def test_host_barrier_inside_region_raises():
    src = r'''
    int main(void)
    {
        #pragma omp parallel num_threads(2)
        {
            #pragma omp barrier
        }
        return 0;
    }
    '''
    prog = OmpiCompiler().compile(src, "hb")
    with pytest.raises(HostTeamError):
        prog.run()


def test_host_single_and_master():
    src = r'''
    int singles[1];
    int main(void)
    {
        #pragma omp parallel num_threads(4)
        {
            #pragma omp master
            { singles[0] += 1; }
        }
        return 0;
    }
    '''
    _, run = compile_run(src)
    assert run.machine.global_array("singles")[0] == 1


def test_orphaned_worksharing_executes_once():
    src = r'''
    int hits[10];
    int main(void)
    {
        int i;
        #pragma omp for
        for (i = 0; i < 10; i++) hits[i] += 1;
        return 0;
    }
    '''
    _, run = compile_run(src)
    assert (run.machine.global_array("hits") == 1).all()
