"""Tests for the affine-loop vectorizer (equivalence with tree-walking)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfront import astnodes as A
from repro.cfront.interp import Machine
from repro.cfront.parser import parse_translation_unit
from repro.cfront.vectorize import try_vectorize_for


def run(src):
    machine = Machine(parse_translation_unit(src))
    machine.run()
    return machine


def _has_vectorizable_main_loop(src) -> bool:
    """Check the first for-loop in main() against the full vectorizer
    (analysis + dry compilation), without running the rest of main."""
    machine = Machine(parse_translation_unit(src))
    main = machine.globals["main"].defn
    loops = [n for n in main.body.walk() if isinstance(n, A.For)]
    env = [{}]
    # declare locals so analysis can resolve them: execute decls only
    for stmt in main.body.body:
        if isinstance(stmt, A.DeclStmt):
            machine._exec_decl(stmt, env)
    loop = loops[0]
    if loop.init is not None:
        machine.exec_stmt(loop.init, env)
    return try_vectorize_for(machine, loop, env)


def test_simple_init_vectorized_matches():
    m = run("""
    float x[1000];
    int main(void) { int i; for (i = 0; i < 1000; i++) x[i] = 2 * i + 1; return 0; }
    """)
    assert np.array_equal(m.global_array("x"), 2 * np.arange(1000) + 1)


def test_loop_variable_final_value():
    m = run("""
    int final;
    int main(void) { int i; for (i = 3; i < 17; i += 4) ; final = i; return 0; }
    """)
    # iterations at 3,7,11,15 -> final value 19
    assert m.global_array("final") == 19


def test_le_condition():
    m = run("""
    int xs[11];
    int main(void) { int i; for (i = 0; i <= 10; i++) xs[i] = i; return 0; }
    """)
    assert list(m.global_array("xs")) == list(range(11))


def test_saxpy_pattern_same_index_read_write():
    m = run("""
    float x[256], y[256];
    int main(void) {
        int i;
        for (i = 0; i < 256; i++) { x[i] = i; y[i] = 1.0f; }
        for (i = 0; i < 256; i++) y[i] = 2.5f * x[i] + y[i];
        return 0;
    }
    """)
    assert np.allclose(m.global_array("y"), 2.5 * np.arange(256) + 1)


def test_compound_assignment_vectorized():
    m = run("""
    float y[64];
    int main(void) {
        int i;
        for (i = 0; i < 64; i++) y[i] = i;
        for (i = 0; i < 64; i++) y[i] *= 3.0f;
        return 0;
    }
    """)
    assert np.allclose(m.global_array("y"), 3.0 * np.arange(64))


def test_loop_carried_dependence_not_vectorized():
    src = """
    int xs[16];
    int main(void) {
        int i;
        for (i = 1; i < 16; i++) xs[i] = xs[i - 1] + 1;
        return 0;
    }
    """
    assert not _has_vectorizable_main_loop(src)
    # and the interpreted fallback is still correct
    m = run(src)
    assert list(m.global_array("xs")) == list(range(16))


def test_call_in_body_not_vectorized_unless_math():
    src_math = """
    float x[32];
    int main(void) { int i; for (i = 0; i < 32; i++) x[i] = sqrt((double) i); return 0; }
    """
    m = run(src_math)
    assert np.allclose(m.global_array("x"), np.sqrt(np.arange(32)), rtol=1e-6)

    src_user = """
    int f(int i) { return i; }
    int xs[8];
    int main(void) { int i; for (i = 0; i < 8; i++) xs[i] = f(i); return 0; }
    """
    assert not _has_vectorizable_main_loop(src_user)
    m2 = run(src_user)
    assert list(m2.global_array("xs")) == list(range(8))


def test_2d_init_via_flattened_index():
    m = run("""
    float A[64 * 64];
    int n = 64;
    int main(void) {
        int i, j;
        for (i = 0; i < 64; i++)
            for (j = 0; j < 64; j++)
                A[i * 64 + j] = ((float) (i * j)) / 64;
        return 0;
    }
    """)
    i, j = np.meshgrid(np.arange(64), np.arange(64), indexing="ij")
    assert np.allclose(m.global_array("A").reshape(64, 64), (i * j).astype(np.float32) / 64)


def test_2d_init_via_true_2d_array():
    m = run("""
    float A[32][16];
    int main(void) {
        int i, j;
        for (i = 0; i < 32; i++)
            for (j = 0; j < 16; j++)
                A[i][j] = i + 10 * j;
        return 0;
    }
    """)
    i, j = np.meshgrid(np.arange(32), np.arange(16), indexing="ij")
    assert np.allclose(m.global_array("A"), i + 10 * j)


def test_modulo_and_division_patterns():
    m = run("""
    int xs[100];
    int main(void) { int i; for (i = 0; i < 100; i++) xs[i] = (i % 7) + i / 9; return 0; }
    """)
    iv = np.arange(100)
    assert np.array_equal(m.global_array("xs"), iv % 7 + iv // 9)


def test_empty_iteration_space():
    m = run("""
    int xs[4];
    int final;
    int main(void) { int i; for (i = 5; i < 5; i++) xs[0] = 99; final = i; return 0; }
    """)
    assert m.global_array("xs")[0] == 0
    assert m.global_array("final") == 5


def test_if_in_body_falls_back():
    src = """
    int xs[10];
    int main(void) {
        int i;
        for (i = 0; i < 10; i++) { if (i % 2) xs[i] = 1; }
        return 0;
    }
    """
    assert not _has_vectorizable_main_loop(src)
    m = run(src)
    assert list(m.global_array("xs")) == [0, 1] * 5


@settings(max_examples=30, deadline=None)
@given(
    start=st.integers(min_value=0, max_value=20),
    stop=st.integers(min_value=0, max_value=200),
    step=st.integers(min_value=1, max_value=7),
    scale=st.integers(min_value=-5, max_value=5),
)
def test_property_vectorized_matches_scalar_semantics(start, stop, step, scale):
    src = f"""
    int xs[512];
    int final;
    int main(void) {{
        int i;
        for (i = {start}; i < {stop}; i += {step}) xs[i] = {scale} * i + 2;
        final = i;
        return 0;
    }}
    """
    m = run(src)
    expect = np.zeros(512, dtype=np.int64)
    i = start
    while i < stop:
        expect[i] = scale * i + 2
        i += step
    assert np.array_equal(m.global_array("xs"), expect[:512].astype(np.int32))
    assert m.global_array("final") == i


def test_scalar_reduction_folds_sequentially():
    """``acc[inv] += expr(i)`` collapses every iteration onto one cell; the
    fold must accumulate in the target dtype with the same rounding as the
    scalar loop (regression: the scatter path read a stale accumulator and
    kept only the last iteration's addition)."""
    m = run("""
    float a[16], b[16], acc[2];
    int main(void) {
        int k;
        for (k = 0; k < 16; k++) { a[k] = k + 1; b[k] = k + 2; }
        acc[0] = 3.0f;
        for (k = 0; k < 16; k++) acc[0] += 2.0f * a[k] * b[k];
        return 0;
    }
    """)
    a = np.arange(16, dtype=np.float32) + 1
    b = np.arange(16, dtype=np.float32) + 2
    expect = np.float32(3.0)
    for k in range(16):
        expect = np.float32(expect + np.float32(2.0) * a[k] * b[k])
    assert m.global_array("acc")[0] == expect


def test_gemm_inner_loop_reduction():
    """The gemm host-fallback shape: an invariant-indexed accumulator inside
    nested loops, seeded by a ``*=`` statement."""
    m = run("""
    float A[16], B[16], C[16];
    int main(void) {
        int i, j, k, n;
        n = 4;
        for (i = 0; i < 16; i++) { A[i] = i + 1; B[i] = 16 - i; C[i] = i; }
        for (i = 0; i < n; i++)
            for (j = 0; j < n; j++)
            {
                C[i * n + j] *= 3.0f;
                for (k = 0; k < n; k++)
                    C[i * n + j] += 2.0f * A[i * n + k] * B[k * n + j];
            }
        return 0;
    }
    """)
    a = (np.arange(16, dtype=np.float32) + 1).reshape(4, 4)
    b = (16 - np.arange(16, dtype=np.float32)).reshape(4, 4)
    c = np.arange(16, dtype=np.float32).reshape(4, 4)
    expect = 2.0 * (a.astype(np.float64) @ b) + 3.0 * c
    assert np.allclose(m.global_array("C").reshape(4, 4), expect, rtol=1e-5)


def test_reduction_reading_accumulator_on_rhs_falls_back():
    """``acc[0] = acc[0] + x[i]`` (plain assign) and self-referential
    compound forms cannot fold; they must tree-walk and stay correct."""
    m = run("""
    int xs[8];
    int acc[1];
    int main(void) {
        int i;
        for (i = 0; i < 8; i++) xs[i] = i + 1;
        acc[0] = 0;
        for (i = 0; i < 8; i++) acc[0] = acc[0] + xs[i];
        return 0;
    }
    """)
    assert m.global_array("acc")[0] == 36


def test_integer_reduction_tree_walks_correctly():
    m = run("""
    int acc[1];
    int main(void) {
        int i;
        acc[0] = 5;
        for (i = 0; i < 10; i++) acc[0] += i;
        return 0;
    }
    """)
    assert m.global_array("acc")[0] == 50
