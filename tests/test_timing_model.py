"""Tests for the virtual clock, event log and the Maxwell timing model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuda.device import JETSON_NANO_GPU, JETSON_TX2_GPU
from repro.cuda.sim.engine import KernelStats
from repro.timing import calibration as C
from repro.timing.clock import VirtualClock
from repro.timing.gpumodel import GpuTimingModel
from repro.timing.hostmodel import HostModel
from repro.timing.stats import EventLog


def make_stats(**kw) -> KernelStats:
    stats = KernelStats(grid=(16, 1, 1), block=(256, 1, 1),
                        registers_per_thread=24)
    for key, value in kw.items():
        setattr(stats, key, value)
    return stats


def test_clock_advances_and_rejects_negative():
    clock = VirtualClock()
    assert clock.now() == 0.0
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now() == 2.0
    with pytest.raises(ValueError):
        clock.advance(-1)
    clock.reset()
    assert clock.now() == 0.0


def test_event_log_totals():
    log = EventLog()
    log.add("kernel", 1.0, kernel="k")
    log.add("memcpy_h2d", 0.25, nbytes=100)
    log.add("jit", 0.1)
    log.add("host", 5.0)
    assert log.kernel_time == 1.0
    assert log.memory_time == 0.25
    assert log.measured_time == pytest.approx(1.35)
    assert log.total() == pytest.approx(6.35)
    assert log.count("kernel") == 1


def test_compute_bound_scales_with_instructions():
    model = GpuTimingModel(JETSON_NANO_GPU)
    t1 = model.kernel_time(make_stats(instructions=1_000_000)).total_s
    t2 = model.kernel_time(make_stats(instructions=2_000_000)).total_s
    assert t2 == pytest.approx(2 * t1, rel=1e-6)


def test_bandwidth_bound_matches_sustained_rate():
    model = GpuTimingModel(JETSON_NANO_GPU)
    # 1 GB of DRAM traffic at 14.4 GB/s ~ 69 ms
    segments = (1 << 30) // 32
    b = model.kernel_time(make_stats(global_transactions=segments))
    assert b.bound == "bandwidth"
    assert b.total_s == pytest.approx((1 << 30) / 14.4e9, rel=0.01)


def test_latency_bound_depends_on_occupancy():
    model = GpuTimingModel(JETSON_NANO_GPU)
    lean = make_stats(global_mem_instructions=1_000_000,
                      registers_per_thread=24)
    fat = make_stats(global_mem_instructions=1_000_000,
                     registers_per_thread=128)
    t_lean = model.kernel_time(lean)
    t_fat = model.kernel_time(fat)
    assert t_fat.occupancy_warps < t_lean.occupancy_warps
    assert t_fat.latency_s > t_lean.latency_s


def test_f64_is_heavily_penalised():
    model = GpuTimingModel(JETSON_NANO_GPU)
    f32 = make_stats(instructions=1_000_000, alu_f32=32_000_000)
    f64 = make_stats(instructions=1_000_000, alu_f64=32_000_000)
    assert model.kernel_time(f64).compute_s > 10 * model.kernel_time(f32).compute_s


def test_occupancy_limited_by_threads_registers_smem():
    model = GpuTimingModel(JETSON_NANO_GPU)
    assert model.resident_blocks(256, 24, 0) == 8          # thread limit
    assert model.resident_blocks(256, 128, 0) == 2         # register limit
    assert model.resident_blocks(256, 24, 24 * 1024) == 2  # smem limit
    assert model.resident_blocks(1024, 24, 0) == 2


def test_occupancy_capped_by_grid():
    model = GpuTimingModel(JETSON_NANO_GPU)
    small_grid = make_stats()
    small_grid.grid = (1, 1, 1)
    warps, resident = model.occupancy_warps(small_grid)
    assert resident == 1 and warps == 8.0


def test_faster_device_is_faster():
    nano = GpuTimingModel(JETSON_NANO_GPU)
    tx2 = GpuTimingModel(JETSON_TX2_GPU)
    stats = make_stats(instructions=10_000_000,
                       global_transactions=1_000_000)
    assert tx2.kernel_time(stats).total_s < nano.kernel_time(stats).total_s


def test_host_memcpy_time_linear_in_bytes():
    host = HostModel()
    t1 = host.memcpy_time(1 << 20)
    t2 = host.memcpy_time(2 << 20)
    assert t2 - t1 == pytest.approx((1 << 20) / (C.MEMCPY_BANDWIDTH_GBPS * 1e9))
    assert host.memcpy_time(0) == C.MEMCPY_LATENCY_S


@settings(max_examples=50)
@given(
    instructions=st.integers(min_value=0, max_value=10**9),
    transactions=st.integers(min_value=0, max_value=10**8),
    mem_instr=st.integers(min_value=0, max_value=10**8),
    barriers=st.integers(min_value=0, max_value=10**6),
)
def test_property_kernel_time_nonnegative_and_monotone(
        instructions, transactions, mem_instr, barriers):
    model = GpuTimingModel(JETSON_NANO_GPU)
    stats = make_stats(instructions=instructions,
                       global_transactions=transactions,
                       global_mem_instructions=mem_instr,
                       barriers=barriers)
    t = model.kernel_time(stats).total_s
    assert t >= 0.0
    bigger = make_stats(instructions=instructions * 2 + 1,
                        global_transactions=transactions,
                        global_mem_instructions=mem_instr,
                        barriers=barriers)
    assert model.kernel_time(bigger).total_s >= t
