"""Golden structural checks on generated code (host side and kernel side).

These pin down the *shape* of the translator output — runtime-call
ordering, launch-geometry computation, Fig. 3b structure — so codegen
regressions surface as readable text diffs rather than downstream
execution failures.
"""

import re

import pytest

from repro.cfront.parser import parse_translation_unit
from repro.ompi import OmpiCompiler, OmpiConfig

COMBINED = r'''
float A[4096], B[4096];
int main(void)
{
    int i, j, n = 64;
    #pragma omp target teams distribute parallel for collapse(2) \
        map(to: A[0:n*n], n) map(from: B[0:n*n]) \
        num_teams(16) num_threads(256) schedule(static)
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++)
            B[i * n + j] = 2.0f * A[i * n + j];
    return 0;
}
'''


@pytest.fixture(scope="module")
def combined():
    return OmpiCompiler().compile(COMBINED, "gold")


def test_host_call_ordering(combined):
    host = combined.host_source
    order = [m.group(0) for m in re.finditer(
        r"ort_(map|arg_ptr|arg_val|offload|unmap)", host)]
    # maps, then args, then one offload, then unmaps
    first_arg = order.index("ort_arg_ptr") if "ort_arg_ptr" in order else \
        order.index("ort_arg_val")
    assert all(o == "ort_map" for o in order[:first_arg])
    offload_at = order.index("ort_offload")
    assert all(o in ("ort_arg_ptr", "ort_arg_val")
               for o in order[first_arg:offload_at])
    assert all(o == "ort_unmap" for o in order[offload_at + 1:])


def test_host_unmap_reverse_order(combined):
    host = combined.host_source
    maps = re.findall(r"ort_map\(__dev, (\w+)", host)
    unmaps = re.findall(r"ort_unmap\(__dev, (\w+)", host)
    assert maps == list(reversed(unmaps))


def test_host_grid_block_computation(combined):
    host = combined.host_source
    for var in ("__nth", "__bx", "__by", "__gx", "__gy", "__teams", "__hn0",
                "__hn1"):
        assert re.search(rf"long {var}", host), f"missing {var}"
    # grid.x covers the innermost (j) dimension
    assert "__hn1" in host.split("long __gx")[1].splitlines()[0]


def test_host_code_reparses(combined):
    # the transformed host program is valid C for our frontend
    parse_translation_unit(combined.host_source, "again.c")


def test_kernel_reparses_and_roundtrips(combined):
    text = combined.kernel_sources["gold_kernel0"]
    unit = parse_translation_unit(text, "again.cu")
    from repro.cfront.unparse import unparse
    again = unparse(unit)
    unit2 = parse_translation_unit(again, "again2.cu")
    assert unparse(unit2) == again


def test_combined_kernel_dim_structure(combined):
    text = combined.kernel_sources["gold_kernel0"]
    # outer dimension (i) distributes along y (dim 1), inner (j) along x
    assert "cudadev_get_distribute_chunk_dim(1" in text
    assert "cudadev_get_distribute_chunk_dim(0" in text
    y_pos = text.index("cudadev_get_static_chunk_dim(1")
    x_pos = text.index("cudadev_get_static_chunk_dim(0")
    assert y_pos < x_pos                     # y loop wraps the x loop
    assert "cudadev_target_init(0);" in text


def test_by_value_scalar_parameter(combined):
    text = combined.kernel_sources["gold_kernel0"]
    assert re.search(r"__global__ void gold_kernel0\(float \*A, int n, float \*B\)",
                     text)
    host = combined.host_source
    assert "ort_arg_val(__dev, n)" in host
    assert not re.search(r"ort_map\(__dev, &n", host)


def test_dynamic_schedule_uses_linear_scheme():
    src = COMBINED.replace("schedule(static)", "schedule(dynamic, 4)")
    prog = OmpiCompiler().compile(src, "dyn")
    text = prog.kernel_sources["dyn_kernel0"]
    assert "cudadev_get_dynamic_chunk(" in text
    body = text[text.index("__global__"):]
    assert "cudadev_get_distribute_chunk(0" in body
    assert "_chunk_dim(0" not in body and "_chunk_dim(1" not in body
    assert "__niter" in body


MW = r'''
float data[128];
int main(void)
{
    #pragma omp target map(tofrom: data)
    {
        float total = 0.0f;
        int i;
        #pragma omp parallel num_threads(64) firstprivate(total)
        {
            total = 1.0f;
            data[omp_get_thread_num()] = total;
        }
        for (i = 64; i < 128; i++)
            data[i] = 7.0f;
    }
    return 0;
}
'''


def test_masterworker_structure():
    prog = OmpiCompiler().compile(MW, "mw")
    text = prog.kernel_sources["mw_kernel0"]
    # Fig. 3b shape, in order
    markers = [
        "int _mw_thrid",
        "cudadev_target_init(1)",
        "if (cudadev_in_masterwarp(_mw_thrid))",
        "if (!cudadev_is_masterthr(_mw_thrid))",
        "__shared__ struct vars_st0 vars;",
        "cudadev_register_parallel(thrFunc0",
        "cudadev_exit_target();",
        "cudadev_workerfunc(_mw_thrid);",
    ]
    pos = -1
    for marker in markers:
        nxt = text.index(marker)
        assert nxt > pos, f"{marker} out of order"
        pos = nxt


def test_masterworker_firstprivate_copies_value():
    prog = OmpiCompiler().compile(MW, "mw")
    text = prog.kernel_sources["mw_kernel0"]
    assert "float total = *vars->total;" in text


def test_masterworker_num_threads_forwarded():
    prog = OmpiCompiler().compile(MW, "mw")
    assert "cudadev_register_parallel(thrFunc0, (void *) &vars, 64);" in \
        prog.kernel_sources["mw_kernel0"]


def test_mw_launch_dims():
    prog = OmpiCompiler().compile(MW, "mw")
    host = prog.host_source
    assert "long __bx = 128;" in host      # the paper's fixed 128 threads
    assert "long __gx = (long) 1;" in host or "long __gx = 1;" in host
