"""Tests for the serving-tier resilience layer
(repro.serving.resilience): device health scores, per-device circuit
breakers, request deadlines, retry failover and live session migration,
plus the observability hooks (summary counters, resilience trace track).
"""

import json

import numpy as np
import pytest

from repro.ompi.cache import CompileCache
from repro.ompi.config import OmpiConfig
from repro.serving import (
    BreakerPolicy, CircuitBreaker, DeadlineExceeded, OffloadServer,
    resolve_breaker, resolve_deadline,
)

N = 64

VADD = f"""
float a[{N}], b[{N}], c[{N}];
int main(void) {{
  #pragma omp target teams distribute parallel for map(to: a, b) map(from: c)
  for (int i = 0; i < {N}; i++) c[i] = a[i] * 2.0f + b[i];
  return 0;
}}
"""

#: one mid-run sticky device loss on the first kernel launch
DEVLOST = "device_unavailable@cuLaunchKernel:count=1,sticky=1"


def _vec(seed, shape=N):
    return np.random.default_rng(seed).random(shape, dtype=np.float32)


def _standalone(source, name, seed_arrays, outputs):
    prog = CompileCache().get(source, name, OmpiConfig())
    run = prog.run(seed_arrays=seed_arrays, num_devices=1)
    return {out: np.asarray(run.machine.global_array(out)).tobytes()
            for out in outputs}


# ---------------------------------------------------------------------------
# Policy resolution
# ---------------------------------------------------------------------------

def test_resolve_deadline(monkeypatch):
    monkeypatch.delenv("REPRO_SERVE_DEADLINE", raising=False)
    assert resolve_deadline(None) is None
    assert resolve_deadline("off") is None
    assert resolve_deadline("") is None
    assert resolve_deadline(0) is None
    assert resolve_deadline(-1.0) is None
    assert resolve_deadline("2.5e-3") == 2.5e-3
    assert resolve_deadline(0.01) == 0.01
    monkeypatch.setenv("REPRO_SERVE_DEADLINE", "5e-3")
    assert resolve_deadline(None) == 5e-3
    monkeypatch.setenv("REPRO_SERVE_DEADLINE", "off")
    assert resolve_deadline(None) is None


def test_resolve_breaker(monkeypatch):
    monkeypatch.delenv("REPRO_BREAKER", raising=False)
    assert resolve_breaker(None) == BreakerPolicy()   # on by default
    assert resolve_breaker("off") is None
    assert resolve_breaker("on") == BreakerPolicy()
    policy = resolve_breaker("threshold=2,cooldown=1e-3,window=0.02")
    assert policy.failure_threshold == 2
    assert policy.cooldown_s == 1e-3
    assert policy.window_s == 0.02
    with pytest.raises(ValueError, match="unknown breaker option"):
        resolve_breaker("frobnicate=1")
    monkeypatch.setenv("REPRO_BREAKER", "threshold=7")
    assert resolve_breaker(None).failure_threshold == 7
    monkeypatch.setenv("REPRO_BREAKER", "off")
    assert resolve_breaker(None) is None


# ---------------------------------------------------------------------------
# Breaker state machine (pure virtual-clock unit tests)
# ---------------------------------------------------------------------------

def test_breaker_opens_probes_and_closes():
    policy = BreakerPolicy(failure_threshold=2, window_s=1.0,
                           cooldown_s=1e-3)
    brk = CircuitBreaker(0, policy)
    assert brk.routable(0.0)
    brk.record_failure(0.0)
    assert brk.state == "closed"            # below threshold
    brk.record_failure(0.0001)
    assert brk.state == "open" and brk.opens == 1
    assert not brk.routable(0.0002)         # cooldown running
    assert brk.routable(0.0001 + 1e-3)      # cooldown elapsed: canary slot
    assert brk.state == "half_open" and brk.probes == 1
    brk.record_success(0.002)
    assert brk.state == "closed" and brk.closes == 1
    assert brk.cooldown == policy.cooldown_s


def test_breaker_failed_probe_escalates_bounded_cooldown():
    policy = BreakerPolicy(failure_threshold=1, cooldown_s=1e-3,
                           cooldown_factor=2.0, max_cooldown_s=3e-3)
    brk = CircuitBreaker(0, policy)
    brk.record_failure(0.0)
    assert brk.state == "open"
    cooldowns = []
    t = 0.0
    for _ in range(4):
        t = brk.opened_at + brk.cooldown
        assert brk.routable(t)              # half-open probe
        brk.record_failure(t)               # probe fails: re-open
        cooldowns.append(brk.cooldown)
    assert cooldowns == [2e-3, 3e-3, 3e-3, 3e-3]   # doubled, then capped


def test_breaker_device_loss_is_permanently_open():
    brk = CircuitBreaker(0, BreakerPolicy(cooldown_s=1e-6))
    brk.trip_lost(0.0)
    assert brk.state == "open" and brk.permanent
    assert not brk.routable(1e9)            # no probe loop for a dead device
    assert not brk.allows(1e9)
    brk.record_failure(1.0)                 # no-op, no flapping
    assert brk.opens == 1


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------

def test_unmeetable_deadline_rejected_at_admission():
    with OffloadServer(num_devices=1) as server:
        sess = server.open_session()
        with pytest.raises(DeadlineExceeded):
            server.submit(sess, VADD, name="vadd", outputs=("c",),
                          arrival=1.0, deadline=1.0)
        assert server.stats.deadline_rejections == 1
        assert sess.pending == 0            # nothing leaked into the queue


def test_completion_past_deadline_is_typed_rejection():
    # a 1ns budget cannot cover any modelled offload: the work runs but
    # the client gets a typed rejection, never a silently-late result
    with OffloadServer(num_devices=1, deadline=1e-9) as server:
        sess = server.open_session()
        req = server.submit(sess, VADD, name="vadd", outputs=("c",),
                            arrival=0.0)
        server.drain()
        assert req.status == "rejected"
        assert "DeadlineExceeded" in req.error
        assert server.stats.completed == 0
        assert server.stats.deadline_rejections == 1
        assert server.summary()["deadline_rejections"] == 1


def test_generous_deadline_does_not_perturb_service():
    seeds = {"a": _vec(1), "b": _vec(2)}
    ref = _standalone(VADD, "vadd", seeds, ("c",))
    with OffloadServer(num_devices=1, deadline=10.0) as server:
        sess = server.open_session()
        req = server.submit(sess, VADD, name="vadd", seed_arrays=seeds,
                            outputs=("c",))
        server.drain()
        assert req.status == "done"
        assert req.deadline == req.arrival + 10.0
        assert np.asarray(req.result["c"]).tobytes() == ref["c"]
        assert server.stats.deadline_rejections == 0


# ---------------------------------------------------------------------------
# Failover: device loss mid-request retries on a healthy peer
# ---------------------------------------------------------------------------

def test_devlost_failover_retries_bit_identical():
    seeds = {"a": _vec(3), "b": _vec(4)}
    ref = _standalone(VADD, "vadd", seeds, ("c",))
    with OffloadServer(num_devices=2, faults={0: DEVLOST}) as server:
        sess = server.open_session(device=0)
        req = server.submit(sess, VADD, name="vadd", seed_arrays=seeds,
                            outputs=("c",))
        server.drain()
        # the request lost its device mid-launch, failed over to the
        # healthy peer after a backoff, and completed bit-identically
        assert req.status == "done"
        assert req.retries == 1
        assert req.device == 1 and sess.device == 1
        assert np.asarray(req.result["c"]).tobytes() == ref["c"]
        summary = server.summary()
        assert summary["retries"] == 1
        assert summary["migrations"] >= 1
        assert summary["fault_recovery"]["device_lost"] == 1
        assert summary["breakers"]["states"] == ["open", "closed"]
        assert summary["device_health"][0] == 0.0
        assert summary["device_health"][1] > 0.0


def test_new_work_routes_around_lost_device():
    with OffloadServer(num_devices=2, faults={0: DEVLOST}) as server:
        pinned = server.open_session(device=0)
        req = server.submit(pinned, VADD, name="vadd", outputs=("c",))
        server.drain()
        assert req.status == "done" and pinned.device == 1
        # placement skips the permanently-open device ...
        fresh = server.open_session()
        assert fresh.device == 1
        # ... and a later submit on the failed-over session stays put
        again = server.submit(pinned, VADD, name="vadd", outputs=("c",))
        server.drain()
        assert again.status == "done" and again.device == 1
        assert again.retries == 0           # no second fault to recover


def test_retry_respects_request_deadline():
    # the failover backoff would land past the deadline: the request is
    # rejected with the typed deadline error instead of retried late
    with OffloadServer(num_devices=2, faults={0: DEVLOST},
                       deadline=1e-9) as server:
        sess = server.open_session(device=0)
        req = server.submit(sess, VADD, name="vadd", outputs=("c",),
                            arrival=0.0)
        server.drain()
        assert req.status == "rejected"
        assert "DeadlineExceeded" in req.error
        assert server.stats.retries == 0
        assert server.stats.failed == 0     # failure converted, not kept


# ---------------------------------------------------------------------------
# Live migration of warm session state
# ---------------------------------------------------------------------------

def test_migration_moves_warm_buffers_digest_verified():
    seeds = {"a": _vec(5), "b": _vec(6)}
    ref = _standalone(VADD, "vadd", seeds, ("c",))
    with OffloadServer(num_devices=2) as server:
        sess = server.open_session(device=0)
        r1 = server.submit(sess, VADD, name="vadd", seed_arrays=seeds,
                           outputs=("c",))
        server.drain()
        assert r1.status == "done"
        parked = sess.resident_bytes
        assert parked > 0                   # warm state exists to migrate
        assert server._device_resident[0] == parked
        moved = server.migrate_session(sess, 1, reason="test")
        assert moved == parked              # every buffer verified across
        assert sess.device == 1 and sess.migrations == 1
        assert server._device_resident[0] == 0
        assert server._device_resident[1] == parked
        assert server.stats.migrated_bytes == parked
        # the migrated bytes are live warm state: the resubmit borrows
        # them on the new device and elides the unchanged HtoD copies
        r2 = server.submit(sess, VADD, name="vadd", seed_arrays=seeds,
                           outputs=("c",))
        server.drain()
        assert r2.status == "done" and r2.device == 1
        assert np.asarray(r2.result["c"]).tobytes() == ref["c"]
        assert sess.warm_borrows >= 3 and sess.reuse_hits >= 2


def test_planned_drain_migrates_sessions_and_resume_restores():
    with OffloadServer(num_devices=2) as server:
        s0 = server.open_session(device=0)
        s1 = server.open_session(device=1)
        r0 = server.submit(s0, VADD, name="vadd", outputs=("c",))
        r1 = server.submit(s1, VADD, name="vadd", outputs=("c",))
        done = server.drain(device=0)       # planned drain of device 0
        assert {r.status for r in done} == {"done"}
        assert s0.device == 1 and s0.migrations == 1
        assert r0.device == 1 and r1.device == 1
        assert server.summary()["draining"] == [0]
        # device 0 is out of placement until resumed
        assert server.open_session().device == 1
        server.resume(0)
        assert "draining" not in server.summary()
        assert server.open_session().device == 0


# ---------------------------------------------------------------------------
# Determinism and observability
# ---------------------------------------------------------------------------

def test_chaos_outcomes_deterministic_across_reruns():
    def run():
        seeds = {"a": _vec(7), "b": _vec(8)}
        with OffloadServer(num_devices=4,
                           faults="devlost:p=0.3,seed=11") as server:
            sessions = [server.open_session(f"t{i}") for i in range(8)]
            reqs = [server.submit(s, VADD, name="vadd", seed_arrays=seeds,
                                  outputs=("c",), arrival=0.0)
                    for s in sessions]
            server.drain()
            outcomes = [(r.status, r.device, r.retries, r.done_time)
                        for r in reqs]
            summary = server.summary()
            return outcomes, summary["breakers"], summary["migrations"]

    assert run() == run()


def test_per_device_fault_seeds_are_decorrelated():
    # one shared probabilistic spec must not make all devices fail on
    # the same draw — each registry slot derives its own stream
    with OffloadServer(num_devices=4,
                       faults="devlost:p=0.3,seed=11") as server:
        sessions = [server.open_session(device=k) for k in range(4)]
        for s in sessions:
            server.submit(s, VADD, name="vadd", outputs=("c",))
        server.drain()
        lost = [mod.lost for mod in server.devices]
        assert any(lost) and not all(lost)


def test_resilience_activity_and_chrome_track(tmp_path):
    trace = tmp_path / "resilience.json"
    with OffloadServer(num_devices=2, faults={0: DEVLOST},
                       profile=str(trace)) as server:
        sess = server.open_session(device=0)
        req = server.submit(sess, VADD, name="vadd", outputs=("c",))
        server.drain()
        assert req.status == "done"
        ops = {r.op for r in server.prof.records("resilience")}
        assert {"breaker_open", "retry", "migrate", "health"} <= ops
    data = json.loads(trace.read_text())
    res = [e for e in data["traceEvents"] if e.get("pid") == 5]
    instants = [e for e in res if e.get("ph") == "i"]
    assert any(e["name"] == "resilience:breaker_open" for e in instants)
    assert any(e["name"] == "resilience:retry" for e in instants)
    counters = [e for e in res if e.get("ph") == "C"]
    assert counters and all("score" in e["args"] for e in counters)
