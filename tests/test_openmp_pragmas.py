"""Tests for OpenMP pragma parsing and validation."""

import pytest

from repro.cfront import astnodes as A
from repro.cfront.parser import parse_translation_unit
from repro.cfront.unparse import unparse
from repro.openmp import (
    DataSharingClause, DeviceClause, ExprClause, IfClause, MapClause,
    MotionClause, NowaitClause, OmpParseError, OmpValidationError,
    ReductionClause, ScheduleClause, parse_omp_pragma, validate_directive,
    validate_unit,
)
from repro.openmp.clauses import NameClause


def test_simple_directive_names():
    assert parse_omp_pragma("omp parallel").name == "parallel"
    assert parse_omp_pragma("omp barrier").name == "barrier"
    assert parse_omp_pragma("omp target data map(to: x)").name == "target data"


def test_combined_directive_longest_match():
    d = parse_omp_pragma("omp target teams distribute parallel for")
    assert d.name == "target teams distribute parallel for"
    assert d.includes("teams")
    assert d.includes("parallel for")
    assert d.includes("for")
    assert not d.includes("sections")


def test_map_clause_fig1():
    d = parse_omp_pragma("omp target map(to: a,size,x[0:size]) map(tofrom: y[0:size])")
    maps = list(d.clauses_of(MapClause))
    assert [m.map_type for m in maps] == ["to", "tofrom"]
    names = [item.name for item in maps[0].items]
    assert names == ["a", "size", "x"]
    section = maps[0].items[2].sections[0]
    assert isinstance(section[0], A.IntLit) and section[0].value == 0
    assert isinstance(section[1], A.Ident) and section[1].name == "size"


def test_map_default_type_is_tofrom():
    d = parse_omp_pragma("omp target map(x)")
    (m,) = d.clauses_of(MapClause)
    assert m.map_type == "tofrom"


def test_map_with_expression_section():
    d = parse_omp_pragma("omp target map(to: A[0:n*n])")
    (m,) = d.clauses_of(MapClause)
    lo, length = m.items[0].sections[0]
    assert unparse(length).strip() == "n * n"


def test_map_partial_sections():
    d = parse_omp_pragma("omp target map(to: x[:n], y[2:])")
    (m,) = d.clauses_of(MapClause)
    assert m.items[0].sections[0][0] is None
    assert m.items[1].sections[0][1] is None


def test_num_teams_num_threads_thread_limit():
    d = parse_omp_pragma(
        "omp target teams distribute parallel for "
        "num_teams(n / 32) num_threads(256) thread_limit(512)"
    )
    teams = d.first(ExprClause, "num_teams")
    assert unparse(teams.expr).strip() == "n / 32"
    assert d.first(ExprClause, "num_threads").expr.value == 256
    assert d.first(ExprClause, "thread_limit").expr.value == 512


def test_collapse_clause():
    d = parse_omp_pragma("omp target teams distribute parallel for collapse(2)")
    assert d.first(ExprClause, "collapse").expr.value == 2


def test_schedule_clauses():
    d = parse_omp_pragma("omp for schedule(dynamic, 4)")
    s = d.first(ScheduleClause)
    assert s.schedule == "dynamic" and s.chunk.value == 4
    d2 = parse_omp_pragma("omp for schedule(guided)")
    assert d2.first(ScheduleClause).schedule == "guided"
    assert d2.first(ScheduleClause).chunk is None


def test_bad_schedule_kind_raises():
    with pytest.raises(OmpParseError):
        parse_omp_pragma("omp for schedule(fancy)")


def test_data_sharing_clauses():
    d = parse_omp_pragma("omp parallel private(a, b) firstprivate(c) shared(d)")
    kinds = {c.kind: c.names for c in d.clauses_of(DataSharingClause)}
    assert kinds == {"private": ["a", "b"], "firstprivate": ["c"], "shared": ["d"]}


def test_reduction_clause():
    d = parse_omp_pragma("omp parallel for reduction(+: s, t) reduction(max: m)")
    reds = list(d.clauses_of(ReductionClause))
    assert reds[0].op == "+" and reds[0].names == ["s", "t"]
    assert reds[1].op == "max" and reds[1].names == ["m"]


def test_bad_reduction_op_raises():
    with pytest.raises(OmpParseError):
        parse_omp_pragma("omp parallel for reduction(@: s)")


def test_if_and_device_clauses():
    d = parse_omp_pragma("omp target if(target: n > 100) device(1)")
    ifc = d.first(IfClause)
    assert ifc.modifier == "target"
    assert unparse(ifc.expr).strip() == "n > 100"
    assert d.first(DeviceClause).expr.value == 1


def test_nowait():
    d = parse_omp_pragma("omp for nowait")
    assert d.has(NowaitClause)


def test_critical_name():
    d = parse_omp_pragma("omp critical (lock1)")
    assert d.first(NameClause).name == "lock1"
    d2 = parse_omp_pragma("omp critical")
    assert not d2.has(NameClause)


def test_target_update_motion():
    d = parse_omp_pragma("omp target update to(x[0:n]) from(y)")
    motions = list(d.clauses_of(MotionClause))
    assert [m.direction for m in motions] == ["to", "from"]


def test_unknown_directive_raises():
    with pytest.raises(OmpParseError):
        parse_omp_pragma("omp teleport")


def test_unknown_clause_raises():
    with pytest.raises(OmpParseError):
        parse_omp_pragma("omp parallel sparkle(2)")


def test_standalone_and_declarative_flags():
    assert parse_omp_pragma("omp barrier").is_standalone
    assert parse_omp_pragma("omp target update to(x)").is_standalone
    assert parse_omp_pragma("omp declare target").is_declarative
    assert parse_omp_pragma("omp target").is_target_construct
    assert not parse_omp_pragma("omp target data map(to: x)").is_target_construct


# -- validation ----------------------------------------------------------------

def test_illegal_clause_on_directive():
    d = parse_omp_pragma("omp barrier")
    d.clauses.append(NowaitClause())
    with pytest.raises(OmpValidationError):
        validate_directive(d)


def test_map_not_allowed_on_parallel():
    with pytest.raises(OmpValidationError):
        validate_directive(parse_omp_pragma("omp parallel map(to: x)"))


def test_duplicate_unique_clause_rejected():
    with pytest.raises(OmpValidationError):
        validate_directive(parse_omp_pragma("omp parallel num_threads(2) num_threads(4)"))


def test_target_update_requires_motion():
    with pytest.raises(OmpValidationError):
        validate_directive(parse_omp_pragma("omp target update"))


def test_enter_exit_data_map_types():
    validate_directive(parse_omp_pragma("omp target enter data map(to: x)"))
    validate_directive(parse_omp_pragma("omp target exit data map(from: x)"))
    with pytest.raises(OmpValidationError):
        validate_directive(parse_omp_pragma("omp target enter data map(from: x)"))
    with pytest.raises(OmpValidationError):
        validate_directive(parse_omp_pragma("omp target exit data map(to: x)"))


def test_validate_unit_attaches_directives():
    unit = parse_translation_unit("""
    void f(float y[], int n) {
        int i;
        #pragma omp target teams distribute parallel for map(tofrom: y[0:n]) num_teams(8)
        for (i = 0; i < n; i++) y[i] = 0.0f;
    }
    """)
    directives = validate_unit(unit)
    assert len(directives) == 1
    pragma = unit.functions()[0].body.body[1]
    assert pragma.directive is directives[0]


def test_nested_target_rejected():
    unit = parse_translation_unit("""
    void f(void) {
        #pragma omp target
        {
            #pragma omp target
            { }
        }
    }
    """)
    with pytest.raises(OmpValidationError):
        validate_unit(unit)


def test_distribute_requires_teams():
    unit = parse_translation_unit("""
    void f(float y[], int n) {
        int i;
        #pragma omp target
        {
            #pragma omp distribute
            for (i = 0; i < n; i++) y[i] = 0.0f;
        }
    }
    """)
    with pytest.raises(OmpValidationError):
        validate_unit(unit)


def test_distribute_inside_teams_ok():
    unit = parse_translation_unit("""
    void f(float y[], int n) {
        int i;
        #pragma omp target map(tofrom: y[0:n])
        #pragma omp teams num_teams(4)
        {
            #pragma omp distribute
            for (i = 0; i < n; i++) y[i] = 0.0f;
        }
    }
    """)
    validate_unit(unit)


def test_declare_target_pairing():
    unit = parse_translation_unit(
        "#pragma omp declare target\nint x;\n#pragma omp end declare target\n"
    )
    validate_unit(unit)
    bad = parse_translation_unit("#pragma omp declare target\nint x;\n")
    with pytest.raises(OmpValidationError):
        validate_unit(bad)
