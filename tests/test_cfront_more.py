"""Additional frontend coverage: interpreter corner cases, struct layout,
pointer semantics, unparser statements, and hypothesis round-trips on
generated statement-level programs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfront.ctypes_ import (
    ArrayType, BasicType, DOUBLE, FLOAT, INT, PointerType, StructType,
    promote, usual_arithmetic,
)
from repro.cfront.interp import Machine, Ptr
from repro.cfront.parser import parse_translation_unit
from repro.cfront.unparse import unparse


def run(src, **kw):
    machine = Machine(parse_translation_unit(src), **kw)
    code = machine.run()
    return machine, code


# -- type system ---------------------------------------------------------------

def test_sizeof_table_lp64():
    assert INT.sizeof() == 4
    assert BasicType("long").sizeof() == 8
    assert PointerType(DOUBLE).sizeof() == 8
    assert ArrayType(FLOAT, 12).sizeof() == 48


def test_struct_layout_alignment():
    st_ = StructType("s", (("c", BasicType("char")), ("d", DOUBLE),
                           ("i", INT)))
    offsets, size, align = st_.layout()
    assert offsets == {"c": 0, "d": 8, "i": 16}
    assert align == 8
    assert size == 24      # padded to alignment


def test_usual_arithmetic_conversions():
    assert usual_arithmetic(INT, DOUBLE) == DOUBLE
    assert usual_arithmetic(FLOAT, INT) == FLOAT
    assert usual_arithmetic(BasicType("char"), BasicType("short")) == INT
    assert usual_arithmetic(BasicType("long"), INT) == BasicType("long")
    assert promote(BasicType("char")) == INT
    assert promote(DOUBLE) == DOUBLE


# -- interpreter corners ---------------------------------------------------------

def test_struct_member_through_pointer():
    m, _ = run("""
    struct point { int x; int y; };
    int main(void)
    {
        struct point p;
        struct point *q = &p;
        q->x = 3;
        q->y = q->x * 2;
        printf("%d %d\\n", p.x, p.y);
        return 0;
    }
    """)
    assert m.output() == "3 6\n"


def test_struct_assignment_copies():
    m, _ = run("""
    struct pair { int a; int b; };
    int main(void)
    {
        struct pair p, q;
        p.a = 1; p.b = 2;
        q = p;
        p.a = 99;
        printf("%d %d\\n", q.a, q.b);
        return 0;
    }
    """)
    assert m.output() == "1 2\n"


def test_pointer_comparisons_and_null():
    m, _ = run("""
    int xs[4];
    int main(void)
    {
        int *p = xs, *q = 0;
        if (!q && p != 0 && p == xs)
            printf("ok\\n");
        return 0;
    }
    """)
    assert m.output() == "ok\n"


def test_pointer_into_middle_of_array():
    m, _ = run("""
    int xs[10];
    int main(void)
    {
        int i, *mid = &xs[5];
        for (i = 0; i < 5; i++)
            mid[i] = i + 50;
        mid[-1] = 49;
        printf("%d %d %d\\n", xs[4], xs[5], xs[9]);
        return 0;
    }
    """)
    assert m.output() == "49 50 54\n"


def test_nested_array_of_struct_not_supported_gracefully():
    # struct arrays are outside the supported subset; declaration still
    # allocates, element access works through pointer arithmetic
    m, _ = run("""
    struct cell { int v; int pad; };
    struct cell grid[4];
    int main(void)
    {
        struct cell *p = grid;
        p->v = 7;
        (p + 3)->v = 9;
        printf("%d %d\\n", grid[0].v, grid[3].v);
        return 0;
    }
    """)
    assert m.output() == "7 9\n"


def test_unsigned_wraparound_in_memory():
    m, _ = run("""
    int main(void)
    {
        unsigned int u = 0;
        u = u - 1;
        printf("%u\\n", u);
        return 0;
    }
    """)
    assert m.output() == "4294967295\n"


def test_do_while_runs_once():
    m, _ = run("""
    int main(void)
    {
        int n = 100, count = 0;
        do { count++; } while (n < 10);
        printf("%d\\n", count);
        return 0;
    }
    """)
    assert m.output() == "1\n"


def test_shadowing_in_nested_blocks():
    m, _ = run("""
    int main(void)
    {
        int x = 1;
        {
            int x = 2;
            printf("%d ", x);
        }
        printf("%d\\n", x);
        return 0;
    }
    """)
    assert m.output() == "2 1\n"


def test_char_pointer_string_walk():
    m, _ = run("""
    int main(void)
    {
        char *s = "abc";
        int total = 0;
        while (*s) { total += *s; s++; }
        printf("%d\\n", total);
        return 0;
    }
    """)
    assert m.output() == f"{ord('a') + ord('b') + ord('c')}\n"


def test_function_returning_pointer():
    m, _ = run("""
    int xs[8];
    int *at(int i) { return &xs[i]; }
    int main(void)
    {
        *at(3) = 42;
        printf("%d\\n", xs[3]);
        return 0;
    }
    """)
    assert m.output() == "42\n"


def test_long_long_arithmetic():
    m, _ = run("""
    int main(void)
    {
        long big = 4000000000;
        big = big * 2;
        printf("%ld\\n", big);
        return 0;
    }
    """)
    assert m.output() == "8000000000\n"


# -- unparser statements -----------------------------------------------------------

def test_unparse_preserves_else_if_chain():
    src = """
    int f(int x)
    {
        if (x == 1)
            return 10;
        else if (x == 2)
            return 20;
        else
            return 30;
    }
    """
    text = unparse(parse_translation_unit(src))
    text2 = unparse(parse_translation_unit(text))
    assert text == text2
    assert text.count("if") == 2


_stmt_bodies = st.lists(
    st.sampled_from([
        "x = x + 1;",
        "y = x * 2 - y;",
        "if (x > y) x = y;",
        "while (x > 0) x = x - 3;",
        "for (i = 0; i < 4; i++) y = y + i;",
        "do { y = y - 1; } while (y > 10);",
        "{ int t = x; x = y; y = t; }",
    ]),
    min_size=1, max_size=6,
)


@settings(max_examples=40, deadline=None)
@given(_stmt_bodies)
def test_property_program_roundtrip_and_same_result(stmts):
    body = "\n        ".join(stmts)
    src = f"""
    int out[2];
    int main(void)
    {{
        int x = 9, y = 4, i = 0;
        {body}
        out[0] = x; out[1] = y;
        return 0;
    }}
    """
    unit = parse_translation_unit(src)
    text = unparse(unit)
    unit2 = parse_translation_unit(text)
    assert unparse(unit2) == text
    m1 = Machine(unit)
    m1.run()
    m2 = Machine(unit2)
    m2.run()
    assert list(m1.global_array("out")) == list(m2.global_array("out"))
