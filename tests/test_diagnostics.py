"""Error-path coverage: the compiler must fail loudly, early, and with
source locations — not produce wrong kernels."""

import pytest

from repro.cfront.errors import CFrontError
from repro.ompi import OmpiCompiler
from repro.ompi.xform_cuda import CudaXformError
from repro.openmp import OmpParseError, OmpValidationError


def compile_(src, name="diag"):
    return OmpiCompiler().compile(src, name)


def test_unknown_directive_has_location():
    src = "int main(void)\n{\n    #pragma omp teleport\n    return 0;\n}\n"
    with pytest.raises(OmpParseError) as err:
        compile_(src)
    assert "teleport" in str(err.value)


def test_illegal_clause_reports_directive():
    src = """
    int main(void)
    {
        #pragma omp barrier nowait
        return 0;
    }
    """
    with pytest.raises((OmpValidationError, OmpParseError)) as err:
        compile_(src)
    assert "barrier" in str(err.value)


def test_noncanonical_loop_rejected():
    src = """
    float v[64];
    int main(void)
    {
        int i, n = 64;
        #pragma omp target teams distribute parallel for map(tofrom: v[0:n], n)
        for (i = n; i > 0; i--)
            v[i - 1] = 1.0f;
        return 0;
    }
    """
    with pytest.raises(CudaXformError) as err:
        compile_(src)
    assert "canonical" in str(err.value) or "step" in str(err.value)


def test_collapse_non_nested_rejected():
    src = """
    float v[64];
    int main(void)
    {
        int i, j, n = 8;
        #pragma omp target teams distribute parallel for collapse(2) \
            map(tofrom: v[0:n*n], n)
        for (i = 0; i < n; i++)
        {
            v[i] = 0.0f;
            for (j = 0; j < n; j++)
                v[i * n + j] = 1.0f;
        }
        return 0;
    }
    """
    with pytest.raises(CudaXformError) as err:
        compile_(src)
    assert "collapse" in str(err.value)


def test_nested_parallel_on_device_rejected():
    src = """
    float v[64];
    int main(void)
    {
        int i;
        #pragma omp target map(tofrom: v)
        {
            #pragma omp parallel num_threads(8)
            {
                #pragma omp parallel num_threads(4)
                { v[0] = 1.0f; }
            }
        }
        return 0;
    }
    """
    with pytest.raises(CudaXformError) as err:
        compile_(src)
    assert "nested parallel" in str(err.value)


def test_recursive_device_function_rejected():
    src = """
    int fact(int n) { return n < 2 ? 1 : n * fact(n - 1); }
    int out[1];
    int main(void)
    {
        #pragma omp target map(tofrom: out)
        { out[0] = fact(5); }
        return 0;
    }
    """
    from repro.ompi.callgraph import CallGraphError
    from repro.cuda.nvcc import NvccError
    with pytest.raises((CallGraphError, NvccError)):
        compile_(src)


def test_unsupported_host_directive_rejected():
    src = """
    int main(void)
    {
        #pragma omp teams
        { }
        return 0;
    }
    """
    with pytest.raises(CFrontError):
        compile_(src)


def test_error_message_includes_filename_and_line():
    src = "int main(void)\n{\n    int x = ;\n    return 0;\n}\n"
    with pytest.raises(CFrontError) as err:
        compile_(src, "named")
    assert "named.c:3" in str(err.value)


def test_map_of_undeclared_variable():
    src = """
    int main(void)
    {
        #pragma omp target map(to: nonexistent)
        { }
        return 0;
    }
    """
    from repro.ompi.outline import OutlineError
    with pytest.raises(OutlineError) as err:
        compile_(src)
    assert "nonexistent" in str(err.value)


def test_duplicate_map_of_same_variable():
    src = """
    float v[8];
    int main(void)
    {
        #pragma omp target map(to: v) map(from: v)
        { v[0] = 1.0f; }
        return 0;
    }
    """
    from repro.ompi.outline import OutlineError
    with pytest.raises(OutlineError):
        compile_(src)
