"""Deeper SIMT-engine semantics: divergence nesting, barrier edge cases,
early return, scheduler fairness under spin loops."""

import numpy as np
import pytest

from repro.cfront.parser import parse_translation_unit
from repro.cuda.device import JETSON_NANO_GPU, Dim3
from repro.cuda.ptx.lower import lower_translation_unit
from repro.cuda.sim.engine import FunctionalEngine, LaunchError
from repro.devrt import INTRINSIC_SIGS, build_intrinsics
from repro.mem import LinearMemory

GMEM_BASE = 0x2_0000_0000


def run_kernel(src, kernel, grid, block, arrays, scalars=()):
    unit = parse_translation_unit(src, "t.cu")
    module = lower_translation_unit(unit, INTRINSIC_SIGS, "t")
    gmem = LinearMemory(8 << 20, base=GMEM_BASE, name="gmem")
    addrs, shapes = [], []
    for arr in arrays:
        arr = np.asarray(arr)
        addr = gmem.alloc(max(arr.nbytes, 1))
        gmem.view(addr, arr.size, arr.dtype)[:] = arr.reshape(-1)
        addrs.append(addr)
        shapes.append(arr)
    engine = FunctionalEngine(JETSON_NANO_GPU, gmem, build_intrinsics(), {})
    params = [np.uint64(a) for a in addrs] + list(scalars)
    stats = engine.launch(module.kernels[kernel], Dim3.of(grid), Dim3.of(block),
                          params)
    outs = [gmem.view(a, arr.size, arr.dtype).reshape(arr.shape)
            for a, arr in zip(addrs, shapes)]
    return outs, stats, engine


def test_deeply_nested_divergence():
    src = """
    __global__ void k(int *out)
    {
        int t = threadIdx.x, v = 0;
        if (t < 16) {
            if (t < 8) {
                if (t < 4) v = 1; else v = 2;
            } else {
                if (t < 12) v = 3; else v = 4;
            }
        } else {
            if (t % 2) v = 5; else v = 6;
        }
        out[t] = v;
    }
    """
    def scalar(t):
        if t < 16:
            if t < 8:
                return 1 if t < 4 else 2
            return 3 if t < 12 else 4
        return 5 if t % 2 else 6
    out, stats, _ = run_kernel(src, "k", 1, 32, [np.zeros(32, dtype=np.int32)])
    assert list(out[0]) == [scalar(t) for t in range(32)]
    assert stats.divergent_branches >= 3


def test_early_return_deactivates_lanes():
    src = """
    __global__ void k(int *out)
    {
        int t = threadIdx.x;
        if (t >= 10)
            return;
        out[t] = 1;
        if (t >= 5)
            return;
        out[t] = 2;
    }
    """
    out, _, _ = run_kernel(src, "k", 1, 32, [np.zeros(32, dtype=np.int32)])
    assert list(out[0][:5]) == [2] * 5
    assert list(out[0][5:10]) == [1] * 5
    assert out[0][10:].sum() == 0


def test_syncthreads_with_fully_returned_warp():
    """A warp whose lanes all returned must not block __syncthreads for
    the remaining warps (CUDA 'skips threads that did not call')."""
    src = """
    __global__ void k(int *out)
    {
        int t = threadIdx.x;
        if (t < 32)
            return;            /* whole warp 0 exits */
        out[t] = 1;
        __syncthreads();
        out[t] = 2;
    }
    """
    out, _, _ = run_kernel(src, "k", 1, 64, [np.zeros(64, dtype=np.int32)])
    assert (out[0][32:] == 2).all()


def test_mismatched_named_barrier_counts_detected():
    src = """
    __global__ void k(void)
    {
        if (threadIdx.x < 32)
            __bar_sync(1, 64);
        else
            __bar_sync(1, 96);
    }
    """
    with pytest.raises(LaunchError):
        run_kernel(src, "k", 1, 96, [np.zeros(1, dtype=np.int32)])


def test_barrier_count_not_multiple_of_warp_rejected():
    src = "__global__ void k(void) { __bar_sync(1, 40); }"
    with pytest.raises(LaunchError):
        run_kernel(src, "k", 1, 64, [np.zeros(1, dtype=np.int32)])


def test_barrier_id_out_of_range_rejected():
    src = "__global__ void k(void) { __bar_sync(16, 32); }"
    with pytest.raises(LaunchError):
        run_kernel(src, "k", 1, 32, [np.zeros(1, dtype=np.int32)])


def test_deadlocked_barrier_detected():
    src = """
    __global__ void k(void)
    {
        if (threadIdx.x < 32)
            __bar_sync(1, 96);   /* expects 3 warps; only 1 will arrive */
    }
    """
    with pytest.raises(LaunchError, match="deadlock"):
        run_kernel(src, "k", 1, 96, [np.zeros(1, dtype=np.int32)])


def test_producer_consumer_across_warps_via_spin():
    """Warp 1 spins on a flag that warp 0 sets: the scheduler must
    interleave them (spin yields)."""
    src = """
    __global__ void k(int *flag, int *out)
    {
        int t = threadIdx.x;
        if (t == 0) {
            out[0] = 41;
            atomicExch(flag, 1);
        }
        if (t == 32) {
            while (atomicCAS(flag, 1, 1) == 0) { }
            out[1] = out[0] + 1;
        }
    }
    """
    out, _, _ = run_kernel(src, "k", 1, 64,
                           [np.zeros(1, dtype=np.int32),
                            np.zeros(2, dtype=np.int32)])
    assert out[1][1] == 42


def test_grid_stride_loop():
    src = """
    __global__ void k(float *p, int n)
    {
        int i;
        int stride = gridDim.x * blockDim.x;
        for (i = blockIdx.x * blockDim.x + threadIdx.x; i < n; i += stride)
            p[i] = p[i] + 1.0f;
    }
    """
    # grid-stride loops have a non-constant step: the combined-construct
    # canonicaliser rejects them but raw CUDA supports them
    n = 1000
    out, _, _ = run_kernel(src, "k", 2, 64, [np.zeros(n, dtype=np.float32)],
                           scalars=(np.int32(n),))
    assert (out[0] == 1.0).all()


def test_block_serialisation_single_sm():
    """One SM: blocks run one at a time, so a global flag set by block 0
    is visible to block 1 (this ordering is a property of the simulator,
    matching the Nano's single SM)."""
    src = """
    __global__ void k(int *order)
    {
        if (threadIdx.x == 0)
            order[blockIdx.x] = atomicAdd(&order[4], 1);
    }
    """
    out, _, _ = run_kernel(src, "k", 4, 32, [np.zeros(5, dtype=np.int32)])
    assert list(out[0][:4]) == [0, 1, 2, 3]
