"""Tests for the simulated CUDA driver API."""

import numpy as np
import pytest

from repro.cuda.device import JETSON_NANO_GPU
from repro.cuda.driver import CudaDriver
from repro.cuda.errors import CudaError, CUresult
from repro.cuda.nvcc import compile_device
from repro.cuda.ptx.jit import JitCache

SRC = """
__global__ void scale(float *p, float a, int n)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) p[i] = a * p[i];
}
"""


def make_driver(**kw):
    drv = CudaDriver(**kw)
    drv.cuInit(0)
    dev = drv.cuDeviceGet(0)
    ctx = drv.cuDevicePrimaryCtxRetain(dev)
    drv.cuCtxSetCurrent(ctx)
    return drv


def test_uninitialized_calls_rejected():
    drv = CudaDriver()
    with pytest.raises(CudaError) as err:
        drv.cuDeviceGetCount()
    assert err.value.result == CUresult.CUDA_ERROR_NOT_INITIALIZED


def test_device_discovery_and_attributes():
    drv = make_driver()
    assert drv.cuDeviceGetCount() == 1
    assert "Jetson Nano" in drv.cuDeviceGetName(0)
    assert drv.cuDeviceComputeCapability(0) == (5, 3)
    assert drv.cuDeviceGetAttribute("WARP_SIZE", 0) == 32
    assert drv.cuDeviceGetAttribute("MULTIPROCESSOR_COUNT", 0) == 1
    with pytest.raises(CudaError):
        drv.cuDeviceGet(1)
    with pytest.raises(CudaError):
        drv.cuDeviceGetAttribute("NOT_A_THING", 0)


def test_mem_alloc_free_and_oom():
    drv = make_driver(gmem_capacity=1 << 20)
    a = drv.cuMemAlloc(1024)
    drv.cuMemcpyHtoD(a, np.arange(256, dtype=np.float32))
    data = np.frombuffer(drv.cuMemcpyDtoH(a, 1024), dtype=np.float32)
    assert np.array_equal(data, np.arange(256))
    drv.cuMemFree(a)
    with pytest.raises(CudaError) as err:
        drv.cuMemAlloc(1 << 21)
    assert err.value.result == CUresult.CUDA_ERROR_OUT_OF_MEMORY
    with pytest.raises(CudaError):
        drv.cuMemAlloc(0)


def test_mem_free_double_free_rejected():
    """Regression: freeing the same device pointer twice must be a clean
    CUDA_ERROR_INVALID_VALUE, not silent corruption of the allocator."""
    drv = make_driver()
    a = drv.cuMemAlloc(1024)
    drv.cuMemFree(a)
    with pytest.raises(CudaError) as err:
        drv.cuMemFree(a)
    assert err.value.result == CUresult.CUDA_ERROR_INVALID_VALUE
    assert "already-freed" in err.value.detail


def test_mem_free_unknown_pointer_rejected():
    drv = make_driver()
    a = drv.cuMemAlloc(1024)
    for bogus in (0, a + 8, 0xdeadbeef):
        with pytest.raises(CudaError) as err:
            drv.cuMemFree(bogus)
        assert err.value.result == CUresult.CUDA_ERROR_INVALID_VALUE
    drv.cuMemFree(a)  # the real allocation is still freeable


def test_module_load_and_launch_cubin():
    drv = make_driver()
    image = compile_device(SRC, "m", mode="cubin")
    handle = drv.cuModuleLoadData(image)
    fn = drv.cuModuleGetFunction(handle, "scale")
    n = 100
    ptr = drv.cuMemAlloc(4 * n)
    drv.cuMemcpyHtoD(ptr, np.ones(n, dtype=np.float32))
    drv.cuLaunchKernel(fn, 4, 1, 1, 32, 1, 1,
                       kernel_params=[ptr, np.float32(3.0), np.int32(n)])
    out = np.frombuffer(drv.cuMemcpyDtoH(ptr, 4 * n), dtype=np.float32)
    assert (out == 3.0).all()
    assert drv.log.count("jit") == 0


def test_module_load_ptx_jits_with_cache(tmp_path):
    cache = JitCache(tmp_path)
    image = compile_device(SRC, "m", mode="ptx")
    drv1 = make_driver(jit_cache=cache)
    drv1.cuModuleLoadData(image)
    assert [e.detail for e in drv1.log.events if e.kind == "jit"] == ["compiled"]
    drv2 = make_driver(jit_cache=cache)
    drv2.cuModuleLoadData(image)
    assert [e.detail for e in drv2.log.events if e.kind == "jit"] == ["cache hit"]
    assert cache.hits == 1 and cache.misses == 1


def test_image_bytes_round_trip():
    drv = make_driver()
    image = compile_device(SRC, "m", mode="cubin")
    handle = drv.cuModuleLoadData(image.to_bytes())
    assert drv.cuModuleGetFunction(handle, "scale")


def test_unknown_kernel_name_rejected():
    drv = make_driver()
    handle = drv.cuModuleLoadData(compile_device(SRC, "m"))
    with pytest.raises(CudaError) as err:
        drv.cuModuleGetFunction(handle, "nonsense")
    assert err.value.result == CUresult.CUDA_ERROR_NOT_FOUND


def test_unlinked_cubin_cannot_launch():
    drv = make_driver()
    image = compile_device(SRC, "m", mode="cubin", link_device_library=False)
    handle = drv.cuModuleLoadData(image)
    fn = drv.cuModuleGetFunction(handle, "scale")
    ptr = drv.cuMemAlloc(16)
    with pytest.raises(CudaError) as err:
        drv.cuLaunchKernel(fn, 1, 1, 1, 32, 1, 1,
                           kernel_params=[ptr, np.float32(1.0), np.int32(4)])
    assert err.value.result == CUresult.CUDA_ERROR_INVALID_IMAGE


def test_wrong_param_count_rejected():
    drv = make_driver()
    handle = drv.cuModuleLoadData(compile_device(SRC, "m"))
    fn = drv.cuModuleGetFunction(handle, "scale")
    with pytest.raises(CudaError) as err:
        drv.cuLaunchKernel(fn, 1, 1, 1, 32, 1, 1, kernel_params=[np.int32(4)])
    assert err.value.result == CUresult.CUDA_ERROR_INVALID_VALUE


def test_module_unload_frees_globals():
    src = """
    __device__ float cache[256];
    __global__ void k(float *p) { p[0] = cache[0]; }
    """
    drv = make_driver()
    handle = drv.cuModuleLoadData(compile_device(src, "m"))
    addr, size = drv.cuModuleGetGlobal(handle, "cache")
    assert size == 1024
    in_use = drv.gmem.bytes_in_use
    drv.cuModuleUnload(handle)
    assert drv.gmem.bytes_in_use == in_use - 1024
    with pytest.raises(CudaError):
        drv.cuModuleGetFunction(handle, "k")


def test_memset_d8():
    drv = make_driver()
    ptr = drv.cuMemAlloc(64)
    drv.cuMemsetD8(ptr, 0xAB, 64)
    out = drv.cuMemcpyDtoH(ptr, 64)
    assert out == b"\xab" * 64


def test_sampled_launch_matches_full_timing_for_uniform_kernel():
    """Sampling must agree with full execution for a uniform kernel."""
    image = compile_device(SRC, "m")
    n = 64 * 256
    results = {}
    for mode in ("full", "sample"):
        drv = make_driver(launch_mode=mode)
        handle = drv.cuModuleLoadData(image)
        fn = drv.cuModuleGetFunction(handle, "scale")
        ptr = drv.cuMemAlloc(4 * n)
        drv.cuMemcpyHtoD(ptr, np.ones(n, dtype=np.float32))
        stats = drv.cuLaunchKernel(fn, n // 256, 1, 1, 256, 1, 1,
                                   kernel_params=[ptr, np.float32(2.0),
                                                  np.int32(n)])
        results[mode] = (stats.instructions,
                         [e.seconds for e in drv.log.events
                          if e.kind == "kernel"][0])
    full_i, full_t = results["full"]
    samp_i, samp_t = results["sample"]
    assert abs(samp_i - full_i) / full_i < 0.02
    assert abs(samp_t - full_t) / full_t < 0.02


def test_series_extrapolation_close_to_reality():
    """Launch a kernel many times with a varying scalar; unsampled launches
    must be extrapolated close to what full execution would charge."""
    src = """
    __global__ void work(float *p, int n, int k)
    {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        int j;
        if (i < n) {
            for (j = 0; j < k; j++)
                p[i] = p[i] + 1.0f;
        }
    }
    """
    image = compile_device(src, "m")
    n = 64 * 256
    times = {}
    for mode in ("full", "sample"):
        drv = make_driver(launch_mode=mode)
        handle = drv.cuModuleLoadData(image)
        fn = drv.cuModuleGetFunction(handle, "work")
        ptr = drv.cuMemAlloc(4 * n)
        for k in range(1, 40):
            drv.cuLaunchKernel(fn, n // 256, 1, 1, 256, 1, 1,
                               kernel_params=[ptr, np.int32(n), np.int32(k)])
        times[mode] = drv.log.kernel_time
    assert abs(times["sample"] - times["full"]) / times["full"] < 0.10


# -- memory introspection (cuMemGetInfo + peak accounting) ----------------------

def test_mem_get_info_tracks_allocations():
    cap = 1 << 20
    drv = make_driver(gmem_capacity=cap)
    free0, total = drv.cuMemGetInfo()
    assert total == drv.device_props.total_global_mem
    assert free0 == cap
    a = drv.cuMemAlloc(4096)
    free1, _ = drv.cuMemGetInfo()
    assert free1 == cap - 4096
    drv.cuMemFree(a)
    free2, _ = drv.cuMemGetInfo()
    assert free2 == cap


def test_mem_get_info_requires_init():
    drv = CudaDriver()
    with pytest.raises(CudaError) as err:
        drv.cuMemGetInfo()
    assert err.value.result == CUresult.CUDA_ERROR_NOT_INITIALIZED


def test_peak_device_memory_accounting():
    drv = make_driver(gmem_capacity=1 << 20)
    a = drv.cuMemAlloc(1024)
    b = drv.cuMemAlloc(2048)
    drv.cuMemFree(a)
    drv.cuMemFree(b)
    # the high-water mark survives the frees
    assert drv.mem_peak == 1024 + 2048
    c = drv.cuMemAlloc(512)
    assert drv.mem_peak == 1024 + 2048
    drv.cuMemFree(c)


def test_peak_includes_module_globals():
    src = """
    __device__ float cache[256];
    __global__ void k(float *p) { p[0] = cache[0]; }
    """
    drv = make_driver()
    handle = drv.cuModuleLoadData(compile_device(src, "m"))
    assert drv.mem_peak >= 1024
    drv.cuModuleUnload(handle)
    assert drv.gmem.bytes_in_use == 0
    assert drv.mem_peak >= 1024


# -- invalid stream/event handles (CUDA_ERROR_INVALID_HANDLE) -------------------

def _assert_invalid_handle(fn):
    with pytest.raises(CudaError) as err:
        fn()
    assert err.value.result == CUresult.CUDA_ERROR_INVALID_HANDLE


def test_destroyed_stream_rejected_everywhere():
    drv = make_driver()
    stream = drv.cuStreamCreate()
    event = drv.cuEventCreate()
    drv.cuStreamDestroy(stream)
    _assert_invalid_handle(lambda: drv.cuStreamSynchronize(stream))
    _assert_invalid_handle(lambda: drv.cuStreamQuery(stream))
    _assert_invalid_handle(lambda: drv.cuStreamDestroy(stream))
    _assert_invalid_handle(lambda: drv.cuStreamWaitEvent(stream, event))
    _assert_invalid_handle(lambda: drv.cuEventRecord(event, stream))


def test_destroyed_event_rejected_everywhere():
    drv = make_driver()
    stream = drv.cuStreamCreate()
    event = drv.cuEventCreate()
    drv.cuEventRecord(event, stream)
    drv.cuEventDestroy(event)
    _assert_invalid_handle(lambda: drv.cuEventRecord(event, stream))
    _assert_invalid_handle(lambda: drv.cuEventQuery(event))
    _assert_invalid_handle(lambda: drv.cuEventSynchronize(event))
    _assert_invalid_handle(lambda: drv.cuEventDestroy(event))
    _assert_invalid_handle(lambda: drv.cuStreamWaitEvent(stream, event))
    other = drv.cuEventCreate()
    drv.cuEventRecord(other, stream)
    _assert_invalid_handle(lambda: drv.cuEventElapsedTime(event, other))
    _assert_invalid_handle(lambda: drv.cuEventElapsedTime(other, event))


def test_async_ops_on_bad_stream_rejected():
    drv = make_driver()
    ptr = drv.cuMemAlloc(64)
    bad = 999
    _assert_invalid_handle(
        lambda: drv.cuMemcpyHtoDAsync(ptr, b"\x01" * 64, bad))
    _assert_invalid_handle(lambda: drv.cuMemcpyDtoHAsync(ptr, 64, bad))
    _assert_invalid_handle(lambda: drv.cuMemsetD8(ptr, 0xCC, 64, stream=bad))


def test_failed_copy_on_bad_stream_leaves_memory_untouched():
    """Handle validation must happen before any side effect."""
    drv = make_driver()
    ptr = drv.cuMemAlloc(64)
    drv.cuMemsetD8(ptr, 0xAA, 64)
    _assert_invalid_handle(
        lambda: drv.cuMemcpyHtoDAsync(ptr, b"\x00" * 64, 999))
    _assert_invalid_handle(lambda: drv.cuMemsetD8(ptr, 0x00, 64, stream=999))
    assert drv.cuMemcpyDtoH(ptr, 64) == b"\xaa" * 64


def test_launch_on_bad_stream_rejected():
    drv = make_driver()
    handle = drv.cuModuleLoadData(compile_device(SRC, "m"))
    fn = drv.cuModuleGetFunction(handle, "scale")
    ptr = drv.cuMemAlloc(16)
    _assert_invalid_handle(lambda: drv.cuLaunchKernel(
        fn, 1, 1, 1, 4, 1, 1, stream=999,
        kernel_params=[ptr, np.float32(1.0), np.int32(4)]))
