"""Tests for the asynchronous offload subsystem: simulated CUDA streams,
events, and the depend-aware ``target nowait`` task graph."""

import numpy as np
import pytest

from repro.cuda.driver import CudaDriver
from repro.cuda.errors import CudaError, CUresult
from repro.cuda.nvcc import compile_device
from repro.ompi.compiler import OmpiCompiler
from repro.openmp import (
    DependClause, OmpParseError, OmpValidationError, parse_omp_pragma,
    validate_directive,
)
from repro.rt_async import (
    DEP_IN, DEP_OUT, DependenceCycleError, StreamError, StreamTable,
    TaskGraph,
)
from repro.timing.clock import VirtualClock
from repro.timing.stats import merge_interval_length

SRC = """
__global__ void scale(float *p, float a, int n)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) p[i] = a * p[i];
}
"""


def make_driver(**kw):
    drv = CudaDriver(**kw)
    drv.cuInit(0)
    dev = drv.cuDeviceGet(0)
    ctx = drv.cuDevicePrimaryCtxRetain(dev)
    drv.cuCtxSetCurrent(ctx)
    return drv


def loaded_kernel(drv):
    handle = drv.cuModuleLoadData(compile_device(SRC, "m", mode="cubin"))
    return drv.cuModuleGetFunction(handle, "scale")


def kernel_spans(log, stream=None):
    return [(e.t_start, e.t_end) for e in log.events
            if e.kind == "kernel" and (stream is None or e.stream == stream)]


# ---------------------------------------------------------------------------
# Stream table semantics
# ---------------------------------------------------------------------------

def test_stream_fifo_ordering_within_stream():
    drv = make_driver()
    fn = loaded_kernel(drv)
    s = drv.cuStreamCreate()
    n = 1024
    ptr = drv.cuMemAlloc(4 * n)
    drv.cuMemcpyHtoDAsync(ptr, np.ones(n, dtype=np.float32), stream=s)
    drv.cuLaunchKernel(fn, 8, 1, 1, 128, 1, 1,
                       kernel_params=[ptr, np.float32(2.0), np.int32(n)],
                       stream=s)
    drv.cuMemcpyDtoHAsync(ptr, 4 * n, stream=s)
    spans = [(e.t_start, e.t_end) for e in drv.log.events
             if e.stream == s and e.has_span]
    assert len(spans) >= 3
    for (s0, e0), (s1, _e1) in zip(spans, spans[1:]):
        assert s0 <= e0 <= s1  # strict FIFO: next op starts after previous ends


def test_no_ordering_across_streams():
    """A copy on one stream overlaps a kernel on another: the copy engine
    and the compute engine run concurrently."""
    drv = make_driver()
    fn = loaded_kernel(drv)
    s1 = drv.cuStreamCreate()
    s2 = drv.cuStreamCreate()
    n = 1 << 18
    a = drv.cuMemAlloc(4 * n)
    b = drv.cuMemAlloc(4 * n)
    # long kernel on s1, long copy on s2: nothing orders them
    drv.cuLaunchKernel(fn, 1024, 1, 1, 256, 1, 1,
                       kernel_params=[a, np.float32(2.0), np.int32(n)],
                       stream=s1)
    drv.cuMemcpyHtoDAsync(b, np.ones(n, dtype=np.float32), stream=s2)
    (k_start, k_end), = kernel_spans(drv.log, stream=s1)
    (c_start, c_end), = [(e.t_start, e.t_end) for e in drv.log.events
                         if e.kind == "memcpy_h2d" and e.stream == s2]
    assert c_start < k_end and k_start < c_end  # intervals overlap
    wall = drv.cuCtxSynchronize() or drv.clock.now()
    assert drv.clock.now() < (k_end - k_start) + (c_end - c_start) + k_start


def test_kernels_serialize_on_single_sm():
    """Jetson Nano has one SM: kernels never overlap even across streams."""
    drv = make_driver()
    fn = loaded_kernel(drv)
    s1 = drv.cuStreamCreate()
    s2 = drv.cuStreamCreate()
    n = 1 << 16
    a = drv.cuMemAlloc(4 * n)
    for s in (s1, s2):
        drv.cuLaunchKernel(fn, 256, 1, 1, 256, 1, 1,
                           kernel_params=[a, np.float32(2.0), np.int32(n)],
                           stream=s)
    (s0, e0), (s1_, _e1) = sorted(kernel_spans(drv.log))
    assert s1_ >= e0


def test_default_stream_is_synchronizing():
    """Legacy default-stream semantics: stream-0 work waits for every other
    stream, and the host clock advances with it."""
    drv = make_driver()
    fn = loaded_kernel(drv)
    s = drv.cuStreamCreate()
    n = 1 << 16
    a = drv.cuMemAlloc(4 * n)
    drv.cuLaunchKernel(fn, 256, 1, 1, 256, 1, 1,
                       kernel_params=[a, np.float32(2.0), np.int32(n)],
                       stream=s)
    async_end = max(e for _s, e in kernel_spans(drv.log))
    drv.cuLaunchKernel(fn, 1, 1, 1, 32, 1, 1,
                       kernel_params=[a, np.float32(2.0), np.int32(32)])
    spans = sorted(kernel_spans(drv.log))
    assert spans[-1][0] >= async_end          # waited for the async stream
    assert drv.clock.now() >= spans[-1][1]    # and the host clock advanced


def test_stream_query_and_synchronize():
    drv = make_driver()
    fn = loaded_kernel(drv)
    s = drv.cuStreamCreate()
    assert drv.cuStreamQuery(s) == CUresult.CUDA_SUCCESS
    n = 1 << 16
    a = drv.cuMemAlloc(4 * n)
    drv.cuLaunchKernel(fn, 256, 1, 1, 256, 1, 1,
                       kernel_params=[a, np.float32(2.0), np.int32(n)],
                       stream=s)
    assert drv.cuStreamQuery(s) == CUresult.CUDA_ERROR_NOT_READY
    drv.cuStreamSynchronize(s)
    assert drv.cuStreamQuery(s) == CUresult.CUDA_SUCCESS


def test_launch_on_unknown_stream_fails_loudly():
    drv = make_driver()
    fn = loaded_kernel(drv)
    ptr = drv.cuMemAlloc(128)
    with pytest.raises(CudaError) as err:
        drv.cuLaunchKernel(fn, 1, 1, 1, 32, 1, 1,
                           kernel_params=[ptr, np.float32(1.0), np.int32(4)],
                           stream=99)
    assert err.value.result == CUresult.CUDA_ERROR_INVALID_HANDLE
    with pytest.raises(CudaError):
        drv.cuMemcpyHtoDAsync(ptr, np.zeros(4, dtype=np.float32), stream=99)
    destroyed = drv.cuStreamCreate()
    drv.cuStreamDestroy(destroyed)
    with pytest.raises(CudaError):
        drv.cuLaunchKernel(fn, 1, 1, 1, 32, 1, 1,
                           kernel_params=[ptr, np.float32(1.0), np.int32(4)],
                           stream=destroyed)


def test_default_stream_cannot_be_destroyed():
    table = StreamTable(VirtualClock())
    with pytest.raises(StreamError):
        table.destroy(0)
    with pytest.raises(StreamError):
        table.get(1234)


# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------

def test_event_elapsed_ms_monotone():
    drv = make_driver()
    fn = loaded_kernel(drv)
    s = drv.cuStreamCreate()
    n = 1 << 16
    a = drv.cuMemAlloc(4 * n)
    start = drv.cuEventCreate()
    mid = drv.cuEventCreate()
    end = drv.cuEventCreate()
    drv.cuEventRecord(start, s)
    drv.cuLaunchKernel(fn, 256, 1, 1, 256, 1, 1,
                       kernel_params=[a, np.float32(2.0), np.int32(n)],
                       stream=s)
    drv.cuEventRecord(mid, s)
    drv.cuLaunchKernel(fn, 256, 1, 1, 256, 1, 1,
                       kernel_params=[a, np.float32(0.5), np.int32(n)],
                       stream=s)
    drv.cuEventRecord(end, s)
    first = drv.cuEventElapsedTime(start, mid)
    total = drv.cuEventElapsedTime(start, end)
    assert first > 0.0
    assert total >= first  # monotone: later record, no smaller elapsed time
    assert drv.cuEventElapsedTime(mid, mid) == 0.0


def test_event_elapsed_requires_recorded_events():
    drv = make_driver()
    e1 = drv.cuEventCreate()
    e2 = drv.cuEventCreate()
    with pytest.raises(CudaError) as err:
        drv.cuEventElapsedTime(e1, e2)
    assert err.value.result == CUresult.CUDA_ERROR_INVALID_HANDLE


def test_stream_wait_event_orders_across_streams():
    drv = make_driver()
    fn = loaded_kernel(drv)
    s1 = drv.cuStreamCreate()
    s2 = drv.cuStreamCreate()
    n = 1 << 16
    a = drv.cuMemAlloc(4 * n)
    drv.cuLaunchKernel(fn, 256, 1, 1, 256, 1, 1,
                       kernel_params=[a, np.float32(2.0), np.int32(n)],
                       stream=s1)
    ev = drv.cuEventCreate()
    drv.cuEventRecord(ev, s1)
    drv.cuStreamWaitEvent(s2, ev)
    drv.cuMemcpyDtoHAsync(a, 4 * n, stream=s2)
    (k_start, k_end), = kernel_spans(drv.log, stream=s1)
    (c_start, _c_end), = [(e.t_start, e.t_end) for e in drv.log.events
                          if e.kind == "memcpy_d2h" and e.stream == s2]
    assert c_start >= k_end


# ---------------------------------------------------------------------------
# Task graph
# ---------------------------------------------------------------------------

def test_taskgraph_depend_chain_edges():
    g = TaskGraph()
    producer = g.add_task("w", [(DEP_OUT, 0x100)])
    consumer = g.add_task("r", [(DEP_IN, 0x100)])
    unrelated = g.add_task("x", [(DEP_OUT, 0x200)])
    assert producer.tid in consumer.preds
    assert unrelated.preds == set()
    writer2 = g.add_task("w2", [(DEP_OUT, 0x100)])
    # anti-dependence: the new writer must wait for the reader
    assert consumer.tid in writer2.preds


def test_taskgraph_ready_and_retire():
    g = TaskGraph()
    t1 = g.add_task("a", [(DEP_OUT, 1)])
    t2 = g.add_task("b", [(DEP_IN, 1)])
    assert [t.tid for t in g.ready_tasks()] == [t1.tid]
    g.mark_issued(t1.tid)
    assert [t.tid for t in g.ready_tasks()] == [t2.tid]
    g.mark_issued(t2.tid)
    assert g.pending == 2
    g.retire_all()
    assert g.pending == 0


def test_taskgraph_cycle_detection():
    g = TaskGraph()
    a = g.add_task("a", [])
    b = g.add_task("b", [])
    g.add_edge(a.tid, b.tid)
    with pytest.raises(DependenceCycleError) as err:
        g.add_edge(b.tid, a.tid)
    assert "cycle" in str(err.value)
    with pytest.raises(DependenceCycleError):
        g.add_edge(a.tid, a.tid)


# ---------------------------------------------------------------------------
# depend() parsing + validation
# ---------------------------------------------------------------------------

def test_depend_clause_parses():
    d = parse_omp_pragma("omp target nowait depend(out: a) depend(in: b,c)")
    deps = list(d.clauses_of(DependClause))
    assert [c.dep_type for c in deps] == ["out", "in"]
    assert [i.name for i in deps[1].items] == ["b", "c"]


def test_depend_bad_type_rejected():
    d = parse_omp_pragma("omp target depend(sink: a)")
    with pytest.raises(OmpValidationError) as err:
        validate_directive(d)
    msg = str(err.value)
    assert "sink" in msg and "in, out, inout" in msg


def test_depend_empty_list_rejected():
    with pytest.raises(OmpParseError):
        parse_omp_pragma("omp target depend(in:)")


def test_depend_illegal_on_parallel():
    d = parse_omp_pragma("omp parallel depend(in: a)")
    with pytest.raises(OmpValidationError):
        validate_directive(d)


def test_taskwait_accepts_depend():
    d = parse_omp_pragma("omp taskwait depend(in: a)")
    validate_directive(d)
    assert d.is_standalone


# ---------------------------------------------------------------------------
# Interval accounting
# ---------------------------------------------------------------------------

def test_merge_interval_length():
    assert merge_interval_length([]) == 0.0
    assert merge_interval_length([(0.0, 1.0), (2.0, 3.0)]) == 2.0
    assert merge_interval_length([(0.0, 2.0), (1.0, 3.0)]) == 3.0
    assert merge_interval_length([(0.0, 5.0), (1.0, 2.0)]) == 5.0


# ---------------------------------------------------------------------------
# End-to-end: target nowait + depend through the OMPi pipeline
# ---------------------------------------------------------------------------

NOWAIT_OVERLAP = r"""
int main(void) {
    double a[4096], b[4096];
    int i;
    for (i = 0; i < 4096; i = i + 1) { a[i] = 1.0; b[i] = 2.0; }
    #pragma omp target teams distribute parallel for nowait depend(out: a) \
            map(tofrom: a[0:4096])
    for (i = 0; i < 4096; i = i + 1)
        a[i] = a[i] * 2.0;
    #pragma omp target teams distribute parallel for nowait depend(out: b) \
            map(tofrom: b[0:4096])
    for (i = 0; i < 4096; i = i + 1)
        b[i] = b[i] * 3.0;
    #pragma omp taskwait
    return 0;
}
"""


def test_nowait_disjoint_regions_overlap():
    """Acceptance: two independent ``target nowait`` regions finish in
    strictly less simulated wall-clock than the sum of their serial times."""
    run = OmpiCompiler().compile(NOWAIT_OVERLAP, name="overlap").run()
    assert run.exit_code == 0
    log = run.ort.cudadev.driver.log
    serial_sum = log.measured_time
    wall = log.overlapped_time()
    assert wall < serial_sum
    assert log.overlap_ratio > 1.0
    # work was spread over more than one stream
    assert len({e.stream for e in log.events if e.kind == "kernel"}) > 1
    # functional result unaffected by the reordering
    binding = run.machine.global_binding  # noqa: F841 (host arrays are locals)


DEP_CHAIN = r"""
int main(void) {
    double a[2048];
    int i;
    for (i = 0; i < 2048; i = i + 1) a[i] = 1.0;
    #pragma omp target teams distribute parallel for nowait depend(out: a) \
            map(tofrom: a[0:2048])
    for (i = 0; i < 2048; i = i + 1)
        a[i] = a[i] + 1.0;
    #pragma omp target teams distribute parallel for nowait depend(inout: a) \
            map(tofrom: a[0:2048])
    for (i = 0; i < 2048; i = i + 1)
        a[i] = a[i] * 10.0;
    #pragma omp taskwait
    return 0;
}
"""


def test_depend_chain_preserves_order():
    """Acceptance: a depend(out)->depend(in) chain executes in program
    order on the simulated timeline."""
    run = OmpiCompiler().compile(DEP_CHAIN, name="chain").run()
    assert run.exit_code == 0
    log = run.ort.cudadev.driver.log
    spans = kernel_spans(log)
    assert len(spans) == 2
    (p_start, p_end), (c_start, _c_end) = spans
    assert c_start >= p_end  # consumer starts after producer finished


def test_nowait_without_taskwait_drains_at_exit():
    src = NOWAIT_OVERLAP.replace("#pragma omp taskwait\n", "")
    run = OmpiCompiler().compile(src, name="drain").run()
    assert run.exit_code == 0
    assert run.ort._schedulers
    assert run.ort.scheduler.pending == 0


def test_barrier_joins_nowait_tasks():
    src = NOWAIT_OVERLAP.replace("#pragma omp taskwait", "#pragma omp barrier")
    run = OmpiCompiler().compile(src, name="barrier_join").run()
    assert run.exit_code == 0
    assert run.ort.scheduler.pending == 0


def test_depend_without_nowait_is_blocking():
    """depend() without nowait is an undeferred task: the host clock has
    already advanced past the kernel when the directive completes."""
    src = DEP_CHAIN.replace(" nowait", "")
    run = OmpiCompiler().compile(src, name="undeferred").run()
    assert run.exit_code == 0
    log = run.ort.cudadev.driver.log
    spans = kernel_spans(log)
    (p_start, p_end), (c_start, _c_end) = spans
    assert c_start >= p_end


# ---------------------------------------------------------------------------
# cuStreamDestroy drains pending work (CUDA semantics)
# ---------------------------------------------------------------------------

def test_stream_destroy_drains_pending_work():
    """Destroying a stream with pending work releases the handle but the
    work still completes: device-wide synchronisation waits for it."""
    drv = make_driver()
    fn = loaded_kernel(drv)
    s = drv.cuStreamCreate()
    n = 1 << 16
    a = drv.cuMemAlloc(4 * n)
    drv.cuLaunchKernel(fn, 256, 1, 1, 256, 1, 1,
                       kernel_params=[a, np.float32(2.0), np.int32(n)],
                       stream=s)
    (_k_start, k_end), = kernel_spans(drv.log, stream=s)
    drv.cuStreamDestroy(s)
    with pytest.raises(CudaError):
        drv.cuStreamQuery(s)           # handle gone immediately
    assert drv.streams.all_done_at() >= k_end
    drv.cuCtxSynchronize()
    assert drv.clock.now() >= k_end  # host still waits for the drain


def test_stream_destroy_drain_orders_default_stream():
    """Legacy default-stream work begins only after work that was draining
    on a destroyed stream."""
    drv = make_driver()
    fn = loaded_kernel(drv)
    s = drv.cuStreamCreate()
    n = 1 << 16
    a = drv.cuMemAlloc(4 * n)
    drv.cuLaunchKernel(fn, 256, 1, 1, 256, 1, 1,
                       kernel_params=[a, np.float32(2.0), np.int32(n)],
                       stream=s)
    (_s0, e0), = kernel_spans(drv.log, stream=s)
    drv.cuStreamDestroy(s)
    drv.cuLaunchKernel(fn, 1, 1, 1, 32, 1, 1,
                       kernel_params=[a, np.float32(0.5), np.int32(32)],
                       stream=0)
    (s1, _e1), = kernel_spans(drv.log, stream=0)
    assert s1 >= e0


# ---------------------------------------------------------------------------
# Task-graph error propagation (failed nowait tasks cancel dependents)
# ---------------------------------------------------------------------------

def test_failed_task_cancels_transitive_dependents():
    from repro.rt_async import OffloadTaskError, StreamPoolScheduler
    drv = make_driver()
    sched = StreamPoolScheduler(drv)
    t1 = sched.begin_task("producer", [(DEP_OUT, 0x1000)])
    sched.fail_task(t1, RuntimeError("injected launch failure"))
    sched.end_task(t1)
    assert t1.state == "failed" and t1.done_event is None
    # dependent submitted after the failure: cancelled at begin
    t2 = sched.begin_task("consumer", [(DEP_IN, 0x1000)])
    assert t2.state == "cancelled" and t2.stream is None
    sched.end_task(t2)
    # transitive dependent of the cancelled task is cancelled too
    t3 = sched.begin_task("grandchild",
                          [(DEP_IN, 0x1000), (DEP_OUT, 0x2000)])
    assert t3.state == "cancelled"
    sched.end_task(t3)
    # an unrelated task still runs normally
    t4 = sched.begin_task("independent", [(DEP_OUT, 0x3000)])
    assert t4.state == "created" and t4.stream is not None
    sched.end_task(t4)
    with pytest.raises(OffloadTaskError) as exc_info:
        sched.taskwait()
    err = exc_info.value
    assert len(err.failed) == 1 and err.failed[0].tid == t1.tid
    assert err.cancelled == 2
    # the join reset the graph: the scheduler is reusable afterwards
    t5 = sched.begin_task("after", [(DEP_IN, 0x1000)])
    assert t5.state == "created"
    sched.end_task(t5)
    sched.taskwait()


def test_fail_task_cancels_already_registered_successors():
    from repro.rt_async import StreamPoolScheduler, OffloadTaskError
    drv = make_driver()
    sched = StreamPoolScheduler(drv)
    t1 = sched.begin_task("a", [(DEP_OUT, 0x10)])
    sched.end_task(t1)
    from repro.rt_async import DEP_INOUT
    t2 = sched.begin_task("b", [(DEP_INOUT, 0x10)])
    sched.end_task(t2)
    # t1 already has t2 registered as successor; failing t1 now walks it
    sched.fail_task(t1, RuntimeError("late failure"))
    assert t2.state == "cancelled"
    with pytest.raises(OffloadTaskError):
        sched.taskwait()


def test_nowait_task_failure_surfaces_at_taskwait():
    """End-to-end: a permanently failing launch inside a nowait task fails
    the task, cancels its dependent, and the error surfaces at taskwait."""
    from repro.cfront.errors import InterpError
    compiled = OmpiCompiler().compile(DEP_CHAIN, name="chain_fail")
    with pytest.raises(InterpError, match="offload task"):
        compiled.run(faults="launch_failed@cuLaunchKernel:p=1.0,times=100",
                     recovery="retries=0")
