"""Property-based tests for the OpenMP pragma parser."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.openmp import parse_omp_pragma
from repro.openmp.clauses import (
    DataSharingClause, ExprClause, MapClause, NowaitClause, ReductionClause,
    ScheduleClause,
)

_names = st.lists(
    st.sampled_from(["a", "b2", "xs", "total", "nrm"]),
    min_size=1, max_size=3, unique=True,
)


@st.composite
def _clause(draw):
    kind = draw(st.sampled_from(
        ["map", "num_teams", "num_threads", "private", "firstprivate",
         "reduction", "schedule", "nowait", "collapse"]))
    if kind == "map":
        mtype = draw(st.sampled_from(["to", "from", "tofrom", "alloc"]))
        names = draw(_names)
        items = ", ".join(f"{n}[0:{draw(st.integers(1, 999))}]" for n in names)
        return kind, f"map({mtype}: {items})", {"map_type": mtype,
                                                "names": names}
    if kind in ("num_teams", "num_threads", "collapse"):
        value = draw(st.integers(min_value=1, max_value=4096))
        return kind, f"{kind}({value})", {"value": value}
    if kind in ("private", "firstprivate"):
        names = draw(_names)
        return kind, f"{kind}({', '.join(names)})", {"names": names}
    if kind == "reduction":
        op = draw(st.sampled_from(["+", "*", "max", "min"]))
        names = draw(_names)
        return kind, f"reduction({op}: {', '.join(names)})", {
            "op": op, "names": names}
    if kind == "schedule":
        sched = draw(st.sampled_from(["static", "dynamic", "guided"]))
        chunk = draw(st.one_of(st.none(), st.integers(1, 64)))
        text = f"schedule({sched}, {chunk})" if chunk else f"schedule({sched})"
        return kind, text, {"sched": sched, "chunk": chunk}
    return kind, "nowait", {}


@settings(max_examples=120)
@given(
    directive=st.sampled_from(
        ["parallel for", "target teams distribute parallel for",
         "teams distribute parallel for", "for"]),
    clauses=st.lists(_clause(), min_size=0, max_size=4),
)
def test_property_clause_combinations_parse_and_survive(directive, clauses):
    seen_kinds = set()
    parts = []
    specs = []
    for kind, text, spec in clauses:
        # duplicate singleton clauses are a validation error, not a parse
        # error; keep the generator on the parseable side
        if kind in ("num_teams", "num_threads", "collapse", "schedule",
                    "nowait") and kind in seen_kinds:
            continue
        seen_kinds.add(kind)
        parts.append(text)
        specs.append((kind, spec))
    pragma = f"omp {directive} " + " ".join(parts)
    d = parse_omp_pragma(pragma)
    assert d.name == directive
    for kind, spec in specs:
        if kind == "map":
            maps = [c for c in d.clauses_of(MapClause)
                    if c.map_type == spec["map_type"]
                    and [i.name for i in c.items] == spec["names"]]
            assert maps, f"map clause lost: {spec}"
        elif kind in ("num_teams", "num_threads", "collapse"):
            clause = d.first(ExprClause, kind)
            assert clause is not None and clause.expr.value == spec["value"]
        elif kind in ("private", "firstprivate"):
            hits = [c for c in d.clauses_of(DataSharingClause)
                    if c.kind == kind and c.names == spec["names"]]
            assert hits
        elif kind == "reduction":
            hits = [c for c in d.clauses_of(ReductionClause)
                    if c.op == spec["op"] and c.names == spec["names"]]
            assert hits
        elif kind == "schedule":
            clause = d.first(ScheduleClause)
            assert clause.schedule == spec["sched"]
            if spec["chunk"]:
                assert clause.chunk.value == spec["chunk"]
            else:
                assert clause.chunk is None
        elif kind == "nowait":
            assert d.has(NowaitClause)


@settings(max_examples=60)
@given(
    lower=st.integers(min_value=0, max_value=10**6),
    length=st.integers(min_value=1, max_value=10**6),
)
def test_property_array_section_bounds_roundtrip(lower, length):
    d = parse_omp_pragma(f"omp target map(to: buf[{lower}:{length}])")
    (m,) = d.clauses_of(MapClause)
    lo, ln = m.items[0].sections[0]
    assert lo.value == lower and ln.value == length
