"""Tests for the functional engine: divergence, barriers, atomics, stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfront.parser import parse_translation_unit
from repro.cuda.device import JETSON_NANO_GPU, Dim3
from repro.cuda.ptx.lower import lower_translation_unit
from repro.cuda.sim.coalesce import transactions
from repro.cuda.sim.engine import FunctionalEngine, LaunchError
from repro.devrt import INTRINSIC_SIGS, build_intrinsics
from repro.mem import LinearMemory

GMEM_BASE = 0x2_0000_0000


def make_engine(mb=32):
    gmem = LinearMemory(mb << 20, base=GMEM_BASE, name="gmem")
    return FunctionalEngine(JETSON_NANO_GPU, gmem, build_intrinsics(), {}), gmem


def compile_module(src):
    unit = parse_translation_unit(src, "t.cu")
    return lower_translation_unit(unit, INTRINSIC_SIGS, "t")


def alloc(gmem, arr):
    arr = np.asarray(arr)
    addr = gmem.alloc(max(arr.nbytes, 1))
    gmem.view(addr, arr.size, arr.dtype)[:] = arr.reshape(-1)
    return addr


# -- coalescing model ----------------------------------------------------------

def test_coalesced_f32_access_is_4_segments():
    addrs = np.uint64(0x1000) + 4 * np.arange(32, dtype=np.uint64)
    assert transactions(addrs, 4, np.ones(32, dtype=bool)) == 4


def test_strided_access_touches_more_segments():
    addrs = np.uint64(0x1000) + 128 * np.arange(32, dtype=np.uint64)
    assert transactions(addrs, 4, np.ones(32, dtype=bool)) == 32


def test_masked_lanes_do_not_count():
    addrs = np.uint64(0x1000) + 4 * np.arange(32, dtype=np.uint64)
    mask = np.zeros(32, dtype=bool)
    mask[0] = True
    assert transactions(addrs, 4, mask) == 1
    assert transactions(addrs, 4, np.zeros(32, dtype=bool)) == 0


def test_unaligned_element_spans_two_segments():
    addrs = np.array([0x1000 + 30], dtype=np.uint64)
    assert transactions(addrs, 4, np.ones(1, dtype=bool)) == 2


# -- execution semantics -----------------------------------------------------------

def test_divergence_both_sides_execute():
    engine, gmem = make_engine()
    module = compile_module("""
    __global__ void k(int *p) {
        int i = threadIdx.x;
        if (i % 2 == 0) p[i] = 100 + i;
        else p[i] = 200 + i;
    }
    """)
    addr = alloc(gmem, np.zeros(32, dtype=np.int32))
    stats = engine.launch(module.kernels["k"], Dim3(1), Dim3(32), [np.uint64(addr)])
    out = gmem.view(addr, 32, np.int32)
    expect = [100 + i if i % 2 == 0 else 200 + i for i in range(32)]
    assert list(out) == expect
    assert stats.divergent_branches >= 1


def test_uniform_branch_not_counted_divergent():
    engine, gmem = make_engine()
    module = compile_module("""
    __global__ void k(int *p, int flag) {
        if (flag) p[threadIdx.x] = 1;
    }
    """)
    addr = alloc(gmem, np.zeros(32, dtype=np.int32))
    stats = engine.launch(module.kernels["k"], Dim3(1), Dim3(32),
                          [np.uint64(addr), np.int32(1)])
    assert stats.divergent_branches == 0


def test_partial_warp_block():
    engine, gmem = make_engine()
    module = compile_module("""
    __global__ void k(int *p) { p[threadIdx.x] = 1; }
    """)
    addr = alloc(gmem, np.zeros(64, dtype=np.int32))
    stats = engine.launch(module.kernels["k"], Dim3(1), Dim3(40), [np.uint64(addr)])
    out = gmem.view(addr, 64, np.int32)
    assert out[:40].sum() == 40 and out[40:].sum() == 0
    assert stats.warps_launched == 2


def test_2d_block_indexing():
    engine, gmem = make_engine()
    module = compile_module("""
    __global__ void k(int *p) {
        int x = threadIdx.x, y = threadIdx.y;
        p[y * 8 + x] = 10 * y + x;
    }
    """)
    addr = alloc(gmem, np.zeros(32, dtype=np.int32))
    engine.launch(module.kernels["k"], Dim3(1), Dim3.of((8, 4)), [np.uint64(addr)])
    out = gmem.view(addr, 32, np.int32).reshape(4, 8)
    y, x = np.meshgrid(np.arange(4), np.arange(8), indexing="ij")
    assert np.array_equal(out, 10 * y + x)


def test_grid_y_dimension():
    engine, gmem = make_engine()
    module = compile_module("""
    __global__ void k(int *p) {
        int i = (blockIdx.y * gridDim.x + blockIdx.x) * blockDim.x + threadIdx.x;
        p[i] = blockIdx.y;
    }
    """)
    addr = alloc(gmem, np.zeros(4 * 3 * 8, dtype=np.int32))
    engine.launch(module.kernels["k"], Dim3.of((4, 3)), Dim3(8), [np.uint64(addr)])
    out = gmem.view(addr, 96, np.int32).reshape(3, 4, 8)
    for by in range(3):
        assert (out[by] == by).all()


def test_syncthreads_shared_memory_flow():
    engine, gmem = make_engine()
    module = compile_module("""
    __global__ void k(int *p) {
        __shared__ int buf[64];
        int t = threadIdx.x;
        buf[t] = t;
        __syncthreads();
        p[t] = buf[63 - t];
    }
    """)
    addr = alloc(gmem, np.zeros(64, dtype=np.int32))
    engine.launch(module.kernels["k"], Dim3(1), Dim3(64), [np.uint64(addr)])
    assert list(gmem.view(addr, 64, np.int32)) == list(range(63, -1, -1))


def test_atomic_add_full_block():
    engine, gmem = make_engine()
    module = compile_module("""
    __global__ void k(int *counter) { atomicAdd(counter, 1); }
    """)
    addr = alloc(gmem, np.zeros(1, dtype=np.int32))
    stats = engine.launch(module.kernels["k"], Dim3(2), Dim3(128), [np.uint64(addr)])
    assert int(gmem.load(addr, np.int32)) == 256
    assert stats.atomics == 256


def test_atomic_cas_lock_pattern():
    engine, gmem = make_engine()
    module = compile_module("""
    __global__ void k(int *lock, int *total) {
        int done = 0;
        while (!done) {
            if (atomicCAS(lock, 0, 1) == 0) {
                *total = *total + 1;
                atomicExch(lock, 0);
                done = 1;
            }
        }
    }
    """)
    lock = alloc(gmem, np.zeros(1, dtype=np.int32))
    total = alloc(gmem, np.zeros(1, dtype=np.int32))
    engine.launch(module.kernels["k"], Dim3(2), Dim3(64),
                  [np.uint64(lock), np.uint64(total)])
    assert int(gmem.load(total, np.int32)) == 128


def test_device_printf_per_lane():
    engine, gmem = make_engine()
    module = compile_module("""
    __global__ void k(void) {
        if (threadIdx.x < 2) printf("lane %d\\n", threadIdx.x);
    }
    """)
    engine.launch(module.kernels["k"], Dim3(1), Dim3(32), [])
    assert engine.stdout == ["lane 0\n", "lane 1\n"]


def test_launch_validation():
    engine, _ = make_engine()
    module = compile_module("__global__ void k(void) { }")
    with pytest.raises(LaunchError):
        engine.launch(module.kernels["k"], Dim3(1), Dim3(2048), [])
    with pytest.raises(LaunchError):
        engine.launch(module.kernels["k"], Dim3(0), Dim3(32), [])


def test_unmapped_address_detected():
    engine, _ = make_engine()
    module = compile_module("""
    __global__ void k(int *p) { p[0] = 1; }
    """)
    with pytest.raises(LaunchError):
        engine.launch(module.kernels["k"], Dim3(1), Dim3(1), [np.uint64(0x10)])


def test_only_blocks_subset():
    engine, gmem = make_engine()
    module = compile_module("""
    __global__ void k(int *p) {
        p[blockIdx.x * blockDim.x + threadIdx.x] = 1;
    }
    """)
    addr = alloc(gmem, np.zeros(8 * 32, dtype=np.int32))
    stats = engine.launch(module.kernels["k"], Dim3(8), Dim3(32),
                          [np.uint64(addr)], only_blocks=[(0, 0, 0), (7, 0, 0)])
    out = gmem.view(addr, 256, np.int32)
    assert out[:32].sum() == 32 and out[-32:].sum() == 32
    assert out[32:-32].sum() == 0
    assert stats.blocks_launched == 2


def test_stats_transactions_coalesced_vs_strided():
    engine, gmem = make_engine()
    module = compile_module("""
    __global__ void co(float *p) { p[threadIdx.x] = 1.0f; }
    __global__ void sd(float *p) { p[threadIdx.x * 33] = 1.0f; }
    """)
    addr = alloc(gmem, np.zeros(33 * 32, dtype=np.float32))
    s1 = engine.launch(module.kernels["co"], Dim3(1), Dim3(32), [np.uint64(addr)])
    t_coalesced = s1.global_transactions
    s2 = engine.launch(module.kernels["sd"], Dim3(1), Dim3(32), [np.uint64(addr)])
    assert s2.global_transactions > 4 * t_coalesced


def test_f64_and_special_op_counters():
    engine, gmem = make_engine()
    module = compile_module("""
    __global__ void k(double *p, float *q) {
        int i = threadIdx.x;
        p[i] = p[i] * 2.0;
        q[i] = sqrtf(q[i]);
    }
    """)
    a1 = alloc(gmem, np.ones(32))
    a2 = alloc(gmem, np.ones(32, dtype=np.float32))
    stats = engine.launch(module.kernels["k"], Dim3(1), Dim3(32),
                          [np.uint64(a1), np.uint64(a2)])
    assert stats.alu_f64 >= 32
    assert stats.special_ops >= 32


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=300))
def test_property_guarded_kernel_touches_exactly_n(n):
    engine, gmem = make_engine(4)
    module = compile_module("""
    __global__ void k(int *p, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) p[i] = 1;
    }
    """)
    addr = alloc(gmem, np.zeros(512, dtype=np.int32))
    blocks = (n + 63) // 64
    engine.launch(module.kernels["k"], Dim3(blocks), Dim3(64),
                  [np.uint64(addr), np.int32(n)])
    out = gmem.view(addr, 512, np.int32)
    assert out.sum() == n
    assert (out[:n] == 1).all()
