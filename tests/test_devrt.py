"""Tests for the cudadev device runtime library (device part)."""

import numpy as np
import pytest

from repro.cfront.parser import parse_translation_unit
from repro.cuda.device import JETSON_NANO_GPU, Dim3
from repro.cuda.ptx.lower import lower_translation_unit
from repro.cuda.sim.engine import FunctionalEngine, LaunchError
from repro.devrt import INTRINSIC_SIGS, build_intrinsics
from repro.devrt.barriers import round_up_threads
from repro.devrt.state import MW_BLOCK_THREADS, MW_WORKERS
from repro.mem import LinearMemory

GMEM_BASE = 0x2_0000_0000


def run_kernel(src, kernel, grid, block, arrays, scalars=()):
    unit = parse_translation_unit(src, "t.cu")
    module = lower_translation_unit(unit, INTRINSIC_SIGS, "t")
    gmem = LinearMemory(16 << 20, base=GMEM_BASE, name="gmem")
    addrs = []
    shapes = []
    for arr in arrays:
        arr = np.asarray(arr)
        addr = gmem.alloc(max(arr.nbytes, 1))
        gmem.view(addr, arr.size, arr.dtype)[:] = arr.reshape(-1)
        addrs.append(addr)
        shapes.append(arr)
    engine = FunctionalEngine(JETSON_NANO_GPU, gmem, build_intrinsics(), {})
    params = [np.uint64(a) for a in addrs] + list(scalars)
    stats = engine.launch(module.kernels[kernel], Dim3.of(grid), Dim3.of(block), params)
    outs = [gmem.view(a, arr.size, arr.dtype).reshape(arr.shape)
            for a, arr in zip(addrs, shapes)]
    return outs, stats, engine


MW_WRAPPER = """
__global__ void k(int *out, int *nbuf)
{{
    int _mw_thrid = threadIdx.x;
    cudadev_target_init(1);
    if (cudadev_in_masterwarp(_mw_thrid)) {{
        if (!cudadev_is_masterthr(_mw_thrid))
            return;
        int n = nbuf[0];
        {master}
        cudadev_exit_target();
    }} else {{
        cudadev_workerfunc(_mw_thrid);
    }}
}}
"""


def test_constants_match_paper():
    assert MW_BLOCK_THREADS == 128
    assert MW_WORKERS == 96


def test_round_up_rule():
    assert round_up_threads(96) == 96
    assert round_up_threads(1) == 32
    assert round_up_threads(33) == 64
    assert round_up_threads(0) == 32
    assert round_up_threads(95) == 96


def test_masterworker_default_96_threads():
    src = """
    struct vs { int *out; };
    __device__ void tf(void *a)
    {
        struct vs *v = (struct vs *) a;
        v->out[omp_get_thread_num()] = omp_get_num_threads();
    }
    """ + MW_WRAPPER.format(master="""
        {
            __shared__ struct vs vars;
            vars.out = (int *) cudadev_getaddr((void *) out);
            cudadev_register_parallel(tf, (void *) &vars, -1);
        }
    """)
    outs, _, _ = run_kernel(src, "k", 1, 128,
                            [np.zeros(96, dtype=np.int32),
                             np.zeros(1, dtype=np.int32)])
    # all 96 workers participated and saw omp_get_num_threads() == 96
    assert (outs[0] == 96).all()


def test_masterworker_num_threads_subset():
    src = """
    struct vs { int *out; };
    __device__ void tf(void *a)
    {
        struct vs *v = (struct vs *) a;
        v->out[omp_get_thread_num()] = 1;
    }
    """ + MW_WRAPPER.format(master="""
        {
            __shared__ struct vs vars;
            vars.out = (int *) cudadev_getaddr((void *) out);
            cudadev_register_parallel(tf, (void *) &vars, 40);
        }
    """)
    outs, _, _ = run_kernel(src, "k", 1, 128,
                            [np.zeros(96, dtype=np.int32),
                             np.zeros(1, dtype=np.int32)])
    assert outs[0][:40].sum() == 40
    assert outs[0][40:].sum() == 0


def test_masterworker_two_sequential_regions():
    src = """
    struct vs { int *out; };
    __device__ void tf1(void *a)
    {
        struct vs *v = (struct vs *) a;
        v->out[omp_get_thread_num()] += 1;
    }
    __device__ void tf2(void *a)
    {
        struct vs *v = (struct vs *) a;
        v->out[omp_get_thread_num()] += 10;
    }
    """ + MW_WRAPPER.format(master="""
        {
            __shared__ struct vs vars;
            vars.out = (int *) cudadev_getaddr((void *) out);
            cudadev_register_parallel(tf1, (void *) &vars, 96);
            cudadev_register_parallel(tf2, (void *) &vars, 96);
        }
    """)
    outs, _, _ = run_kernel(src, "k", 1, 128,
                            [np.zeros(96, dtype=np.int32),
                             np.zeros(1, dtype=np.int32)])
    assert (outs[0] == 11).all()


def test_shmem_stack_push_pop_copies_back():
    src = """
    struct vs { int *i; int *out; };
    __device__ void tf(void *a)
    {
        struct vs *v = (struct vs *) a;
        int t = omp_get_thread_num();
        v->out[t] = *v->i + t;
        if (t == 0)
            *v->i = 999;
    }
    """ + MW_WRAPPER.format(master="""
        int ival = 42;
        {
            __shared__ struct vs vars;
            vars.i = (int *) cudadev_push_shmem((void *) &ival, sizeof(ival));
            vars.out = (int *) cudadev_getaddr((void *) out);
            cudadev_register_parallel(tf, (void *) &vars, 96);
            cudadev_pop_shmem((void *) &ival, sizeof(ival));
        }
        out[100] = ival;
    """)
    outs, _, _ = run_kernel(src, "k", 1, 128,
                            [np.zeros(101, dtype=np.int32),
                             np.zeros(1, dtype=np.int32)])
    assert outs[0][1] == 43          # workers saw the pushed value
    assert outs[0][100] == 999       # pop copied the update back


def test_worksharing_static_covers_iteration_space():
    src = """
    struct vs { int *out; int *n; };
    __device__ void tf(void *a)
    {
        struct vs *v = (struct vs *) a;
        long tlo, thi, it;
        while (cudadev_get_static_chunk(0, 0, (long) *v->n, 0, &tlo, &thi)) {
            for (it = tlo; it < thi; it++)
                v->out[it] += 1;
        }
        cudadev_barrier();
    }
    """ + MW_WRAPPER.format(master="""
        {
            __shared__ struct vs vars;
            vars.out = (int *) cudadev_getaddr((void *) out);
            vars.n = (int *) cudadev_getaddr((void *) nbuf);
            cudadev_register_parallel(tf, (void *) &vars, 96);
        }
    """)
    n = 1000
    outs, _, _ = run_kernel(src, "k", 1, 128,
                            [np.zeros(n, dtype=np.int32),
                             np.array([n], dtype=np.int32)])
    # exactly-once coverage: every iteration executed exactly one time
    assert (outs[0] == 1).all()


@pytest.mark.parametrize("sched", ["static", "dynamic", "guided"])
@pytest.mark.parametrize("chunk", [0, 1, 7])
def test_combined_mode_schedules_cover_space(sched, chunk):
    if sched in ("dynamic", "guided") and chunk == 0:
        chunk = 1
    src = f"""
    __global__ void k(int *out, int n)
    {{
        cudadev_target_init(0);
        long lo, hi, tlo, thi, it;
        cudadev_get_distribute_chunk(0, (long) n, &lo, &hi);
        while (cudadev_get_{sched}_chunk(0, lo, hi, {chunk}, &tlo, &thi)) {{
            for (it = tlo; it < thi; it++)
                out[it] += 1;
        }}
    }}
    """
    n = 500
    outs, _, _ = run_kernel(src, "k", 4, 32,
                            [np.zeros(n, dtype=np.int32)],
                            scalars=(np.int32(n),))
    assert (outs[0] == 1).all(), f"{sched}/{chunk}: some iterations ran != once"


def test_distribute_chunks_partition_by_team():
    src = """
    __global__ void k(long *lo_out, long *hi_out, int n)
    {
        cudadev_target_init(0);
        long lo, hi;
        cudadev_get_distribute_chunk(0, (long) n, &lo, &hi);
        if (threadIdx.x == 0) {
            lo_out[blockIdx.x] = lo;
            hi_out[blockIdx.x] = hi;
        }
    }
    """
    outs, _, _ = run_kernel(src, "k", 4, 32,
                            [np.zeros(4, dtype=np.int64),
                             np.zeros(4, dtype=np.int64)],
                            scalars=(np.int32(100),))
    los, his = outs
    assert los[0] == 0 and his[-1] == 100
    for t in range(3):
        assert his[t] == los[t + 1]  # contiguous partition


def test_sections_each_runs_once():
    src = """
    __global__ void k(int *out)
    {
        cudadev_target_init(0);
        cudadev_sections_init(5, 3);
        int s;
        while ((s = cudadev_next_section(5)) >= 0) {
            atomicAdd(&out[s], 1);
        }
    }
    """
    outs, _, _ = run_kernel(src, "k", 1, 128, [np.zeros(3, dtype=np.int32)])
    assert list(outs[0]) == [1, 1, 1]


def test_trylock_critical_counts_correctly():
    src = """
    __global__ void k(int *total)
    {
        cudadev_target_init(0);
        int done = 0;
        while (!done) {
            if (cudadev_trylock(0) == 0) {
                *total = *total + 1;
                cudadev_unlock(0);
                done = 1;
            }
        }
    }
    """
    outs, _, _ = run_kernel(src, "k", 2, 96, [np.zeros(1, dtype=np.int32)])
    assert outs[0][0] == 192


def test_omp_barrier_roundup_allows_non_multiple_subset():
    # 40 participating workers: X = 64, two worker warps synchronize
    src = """
    struct vs { int *out; };
    __device__ void tf(void *a)
    {
        struct vs *v = (struct vs *) a;
        int t = omp_get_thread_num();
        v->out[t] = 1;
        cudadev_barrier();
        if (t == 0) {
            int i, total = 0;
            for (i = 0; i < 40; i++) total += v->out[i];
            v->out[95] = total;
        }
    }
    """ + MW_WRAPPER.format(master="""
        {
            __shared__ struct vs vars;
            vars.out = (int *) cudadev_getaddr((void *) out);
            cudadev_register_parallel(tf, (void *) &vars, 40);
        }
    """)
    outs, _, _ = run_kernel(src, "k", 1, 128,
                            [np.zeros(96, dtype=np.int32),
                             np.zeros(1, dtype=np.int32)])
    assert outs[0][95] == 40   # barrier ordered all 40 writes before the sum


def test_device_omp_api_combined_mode():
    src = """
    __global__ void k(int *out)
    {
        cudadev_target_init(0);
        int t = threadIdx.x + blockDim.x * threadIdx.y;
        if (t == 3 && omp_get_team_num() == 1) {
            out[0] = omp_get_thread_num();
            out[1] = omp_get_num_threads();
            out[2] = omp_get_team_num();
            out[3] = omp_get_num_teams();
            out[4] = omp_is_initial_device();
        }
    }
    """
    outs, _, _ = run_kernel(src, "k", 4, 64, [np.zeros(5, dtype=np.int32)])
    assert list(outs[0]) == [3, 64, 1, 4, 0]


def test_shmem_overflow_detected():
    src = """
    struct vs { int *p; };
    """ + MW_WRAPPER.format(master="""
        long big = 0;
        {
            __shared__ struct vs vars;
            long j;
            for (j = 0; j < 7000; j++)
                vars.p = (int *) cudadev_push_shmem((void *) &big, sizeof(big));
        }
    """)
    from repro.devrt.shmem import ShmemStackError
    with pytest.raises((ShmemStackError, LaunchError, Exception)):
        run_kernel(src, "k", 1, 128, [np.zeros(4, dtype=np.int32),
                                      np.zeros(1, dtype=np.int32)])
