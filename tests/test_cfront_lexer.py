"""Tests for the C lexer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cfront.errors import LexError
from repro.cfront.lexer import tokenize
from repro.cfront.tokens import TokenKind


def kinds(src):
    return [t.kind for t in tokenize(src)[:-1]]


def texts(src):
    return [t.text for t in tokenize(src)[:-1]]


def test_empty_input_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1 and toks[0].kind is TokenKind.EOF


def test_identifiers_and_keywords():
    toks = tokenize("int foo _bar x9 while")[:-1]
    assert [t.kind for t in toks] == [
        TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.IDENT,
        TokenKind.IDENT, TokenKind.KEYWORD,
    ]


def test_cuda_keywords():
    toks = tokenize("__global__ __device__ __shared__")[:-1]
    assert all(t.kind is TokenKind.KEYWORD for t in toks)


def test_integer_literals():
    toks = tokenize("0 42 0x1F 100u 7L")[:-1]
    assert [t.value for t in toks] == [0, 42, 31, 100, 7]
    assert all(t.kind is TokenKind.INT_LIT for t in toks)


def test_float_literals():
    toks = tokenize("1.5 2.5f .25 1e3 1.5e-2 3. 2f")[:-1]
    assert [t.kind for t in toks] == [TokenKind.FLOAT_LIT] * 7
    assert toks[0].value == 1.5
    assert toks[2].value == 0.25
    assert toks[3].value == 1000.0
    assert toks[5].value == 3.0
    assert toks[6].value == 2.0  # '2f' float suffix on integer


def test_char_and_string_literals():
    toks = tokenize(r"'a' '\n' "  + r'"hi\tthere"')[:-1]
    assert toks[0].value == ord("a")
    assert toks[1].value == ord("\n")
    assert toks[2].value == "hi\tthere"


def test_string_escapes():
    (tok,) = tokenize(r'"\x41\\\""')[:-1]
    assert tok.value == 'A\\"'


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('"abc')


def test_multichar_char_literal_raises():
    with pytest.raises(LexError):
        tokenize("'ab'")


def test_maximal_munch_operators():
    assert texts("a+++b") == ["a", "++", "+", "b"]
    assert texts("x<<=2") == ["x", "<<=", "2"]
    assert texts("a->b") == ["a", "->", "b"]


def test_triple_chevron_tokens():
    assert "<<<" in texts("k<<<g, b>>>(x)")
    assert ">>>" in texts("k<<<g, b>>>(x)")


def test_comments_are_skipped():
    assert texts("a /* b c */ d // e\n f") == ["a", "d", "f"]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_pragma_line_captured_whole():
    toks = tokenize("#pragma omp parallel for\nint x;")
    assert toks[0].kind is TokenKind.PRAGMA
    assert toks[0].text == "omp parallel for"
    assert toks[1].is_keyword("int")


def test_pragma_backslash_continuation():
    src = "#pragma omp target map(to: a) \\\n    map(from: b)\nint x;"
    toks = tokenize(src)
    assert toks[0].kind is TokenKind.PRAGMA
    assert "map(to: a)" in toks[0].text and "map(from: b)" in toks[0].text


def test_include_lines_are_skipped():
    toks = tokenize("#include <stdio.h>\nint x;")
    assert toks[0].is_keyword("int")


def test_unknown_directive_raises():
    with pytest.raises(LexError):
        tokenize("#define N 100\n")


def test_hash_must_start_line():
    with pytest.raises(LexError):
        tokenize("int x; #pragma omp barrier")


def test_locations_track_lines_and_columns():
    toks = tokenize("int\n  x;")
    assert toks[0].loc.line == 1 and toks[0].loc.col == 1
    assert toks[1].loc.line == 2 and toks[1].loc.col == 3


def test_stray_character_raises():
    with pytest.raises(LexError):
        tokenize("int $x;")


def test_bad_suffix_raises():
    with pytest.raises(LexError):
        tokenize("1.5q")
    with pytest.raises(LexError):
        tokenize("10uz9")


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_property_int_literal_roundtrip(n):
    (tok,) = tokenize(str(n))[:-1]
    assert tok.kind is TokenKind.INT_LIT and tok.value == n


@given(st.floats(min_value=0, max_value=1e12, allow_nan=False, allow_infinity=False))
def test_property_float_literal_roundtrip(x):
    (tok,) = tokenize(repr(float(x)))[:-1]
    assert tok.kind is TokenKind.FLOAT_LIT
    assert tok.value == pytest.approx(x, rel=1e-15)


@given(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu"), max_codepoint=127),
        min_size=1, max_size=12,
    ).filter(lambda s: s not in {"if", "else", "for", "while", "do", "int",
                                 "char", "float", "double", "void", "return",
                                 "break", "continue", "long", "short", "struct",
                                 "union", "enum", "static", "extern", "auto",
                                 "signed", "unsigned", "const", "sizeof", "case",
                                 "goto", "switch", "default", "typedef", "inline",
                                 "register", "volatile", "restrict"})
)
def test_property_identifier_roundtrip(name):
    (tok,) = tokenize(name)[:-1]
    assert tok.kind is TokenKind.IDENT and tok.text == name
