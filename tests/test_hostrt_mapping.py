"""Tests for device data environments (map semantics, refcounts)."""

import numpy as np
import pytest

from repro.hostrt.mapping import (
    DataEnv, MAP_ALLOC, MAP_DELETE, MAP_FROM, MAP_RELEASE, MAP_TO,
    MAP_TOFROM, MappingError,
)


class FakeDevice:
    """Minimal DeviceModule stand-in recording transfers."""

    def __init__(self):
        self.next_addr = 0x1000
        self.allocs: dict[int, int] = {}
        self.writes: list[tuple[int, int, int]] = []
        self.reads: list[tuple[int, int, int]] = []

    def mem_alloc(self, size):
        addr = self.next_addr
        self.next_addr += (size + 255) // 256 * 256
        self.allocs[addr] = size
        return addr

    def mem_free(self, addr):
        del self.allocs[addr]

    def write(self, dev, host, size):
        self.writes.append((dev, host, size))

    def read(self, host, dev, size):
        self.reads.append((host, dev, size))


@pytest.fixture
def env():
    return DataEnv(FakeDevice())


def test_map_to_copies_in_once(env):
    env.map_enter(0x100, 64, MAP_TO)
    assert len(env.device.writes) == 1
    assert env.device.writes[0][2] == 64


def test_map_alloc_does_not_copy(env):
    env.map_enter(0x100, 64, MAP_ALLOC)
    assert env.device.writes == []


def test_map_from_copies_out_on_exit_only(env):
    env.map_enter(0x100, 64, MAP_FROM)
    assert env.device.writes == []
    assert env.device.reads == []
    env.map_exit(0x100, MAP_FROM)
    assert len(env.device.reads) == 1


def test_tofrom_round_trip(env):
    env.map_enter(0x100, 64, MAP_TOFROM)
    env.map_exit(0x100, MAP_TOFROM)
    assert len(env.device.writes) == 1
    assert len(env.device.reads) == 1
    assert env.live_entries == 0
    assert env.device.allocs == {}


def test_present_reference_counting(env):
    env.map_enter(0x100, 64, MAP_TO)
    env.map_enter(0x100, 64, MAP_TOFROM)   # present: no new transfer
    assert len(env.device.writes) == 1
    env.map_exit(0x100, MAP_TOFROM)        # refcount 1: no copy yet
    assert env.device.reads == []
    assert env.live_entries == 1
    env.map_exit(0x100, MAP_TO)            # refcount 0, exit type 'to': free
    assert env.device.reads == []
    assert env.live_entries == 0


def test_enclosing_alloc_suppresses_copy_back(env):
    # the OpenMP rule the Jacobi example depends on
    env.map_enter(0x100, 64, MAP_ALLOC)
    env.map_enter(0x100, 64, MAP_TOFROM)
    env.map_exit(0x100, MAP_TOFROM)
    env.map_exit(0x100, MAP_ALLOC)
    assert env.device.reads == []


def test_exit_from_copies_back(env):
    env.map_enter(0x100, 64, MAP_ALLOC)
    env.map_exit(0x100, MAP_FROM)
    assert len(env.device.reads) == 1


def test_delete_forces_removal(env):
    env.map_enter(0x100, 64, MAP_TO)
    env.map_enter(0x100, 64, MAP_TO)
    env.map_exit(0x100, MAP_DELETE)
    assert env.live_entries == 0
    assert env.device.reads == []


def test_translate_interior_address(env):
    env.map_enter(0x100, 64, MAP_TO)
    dev = env.entries[0x100].dev_addr
    assert env.translate(0x100) == dev
    assert env.translate(0x120) == dev + 0x20


def test_translate_unmapped_raises(env):
    with pytest.raises(MappingError):
        env.translate(0x500)
    env.map_enter(0x100, 64, MAP_TO)
    with pytest.raises(MappingError):
        env.translate(0x100 + 64)   # one past the end


def test_section_extending_beyond_entry_rejected(env):
    env.map_enter(0x100, 64, MAP_TO)
    with pytest.raises(MappingError):
        env.map_enter(0x120, 128, MAP_TO)


def test_unmap_of_unmapped_raises(env):
    with pytest.raises(MappingError):
        env.map_exit(0x100, MAP_FROM)


def test_zero_size_rejected(env):
    with pytest.raises(MappingError):
        env.map_enter(0x100, 0, MAP_TO)


def test_update_to_from(env):
    env.map_enter(0x100, 64, MAP_ALLOC)
    env.update_to(0x110, 16)
    env.update_from(0x110, 16)
    assert env.device.writes[-1][2] == 16
    assert env.device.reads[-1][2] == 16
    dev = env.entries[0x100].dev_addr
    assert env.device.writes[-1][0] == dev + 0x10


def test_update_at_interior_offsets(env):
    # updates addressed into the middle of a section mapped at a nonzero
    # lower bound: both directions must hit the device address at the
    # matching offset and the host address as given
    env.map_enter(0x1000, 0x200, MAP_ALLOC)
    dev = env.entries[0x1000].dev_addr
    env.update_to(0x1080, 0x40)
    assert env.device.writes[-1] == (dev + 0x80, 0x1080, 0x40)
    env.update_from(0x11F0, 0x10)          # last 16 bytes of the entry
    assert env.device.reads[-1] == (0x11F0, dev + 0x1F0, 0x10)
    # re-mapping a contained section is a presence hit (refcount++), so a
    # subsequent interior update still translates through the original entry
    assert env.map_enter(0x1100, 0x40, MAP_TO) is env.entries[0x1000]
    env.update_to(0x1110, 8)
    assert env.device.writes[-1] == (dev + 0x110, 0x1110, 8)


def test_update_unmapped_raises(env):
    with pytest.raises(MappingError):
        env.update_to(0x100, 8)
    with pytest.raises(MappingError):
        env.update_from(0x100, 8)


def test_is_present(env):
    assert not env.is_present(0x100)
    env.map_enter(0x100, 64, MAP_TO)
    assert env.is_present(0x100)
    assert env.is_present(0x13F)
    assert not env.is_present(0x140)


def test_remap_after_delete_transfers_again(env):
    # target data holds a reference; an inner exit data map(delete:) tears
    # the entry down regardless of the refcount, and a later map must
    # behave like a first mapping (fresh allocation + fresh transfer)
    env.map_enter(0x100, 64, MAP_TOFROM)    # target data
    env.map_enter(0x100, 64, MAP_TO)        # inner target
    assert len(env.device.writes) == 1      # presence hit: no re-transfer
    env.map_exit(0x100, MAP_DELETE)         # exit data map(delete: ...)
    assert env.live_entries == 0
    assert env.device.allocs == {}
    assert env.device.reads == []           # delete never copies back
    fresh = env.map_enter(0x100, 64, MAP_TO)
    assert fresh.refcount == 1
    assert len(env.device.writes) == 2      # re-map transfers again
    # the enclosing target data's own exit now refers to the *new* entry:
    # its tofrom exit copies back once and frees it
    env.map_exit(0x100, MAP_TOFROM)
    assert len(env.device.reads) == 1
    assert env.live_entries == 0


# -- interval-index lookups ---------------------------------------------------

def test_interior_lookup_between_entries(env):
    env.map_enter(0x100, 64, MAP_ALLOC)
    env.map_enter(0x1000, 256, MAP_ALLOC)
    env.map_enter(0x5000, 16, MAP_ALLOC)
    mid = env.find(0x1000 + 200)
    assert mid is not None and mid.host_addr == 0x1000
    # gaps between entries resolve to nothing
    assert env.find(0x100 + 64) is None
    assert env.find(0xFFF) is None
    assert env.find(0x5000 + 16) is None
    assert env.find(0x50) is None


def test_overlapping_ranges_resolve_to_earliest_mapped(env):
    # a wider range mapped after a narrower one overlaps it: interior
    # addresses of the narrow entry must keep resolving to it (the
    # original linear scan returned the first inserted match)
    env.map_enter(0x200, 0x100, MAP_ALLOC)        # [0x200, 0x300)
    env.map_enter(0x100, 0x400, MAP_ALLOC)        # [0x100, 0x500)
    inner = env.find(0x280)
    assert inner is not None and inner.host_addr == 0x200
    outer = env.find(0x180)
    assert outer is not None and outer.host_addr == 0x100
    assert env.find(0x480).host_addr == 0x100
    # exact starts short-circuit to their own entry
    assert env.find(0x200).host_addr == 0x200
    assert env.find(0x100).host_addr == 0x100


def test_contained_range_lookup_after_unmap(env):
    env.map_enter(0x200, 0x100, MAP_ALLOC)
    env.map_enter(0x100, 0x400, MAP_ALLOC)
    env.map_exit(0x200, MAP_RELEASE)
    # with the contained entry gone, the wide one takes over
    assert env.find(0x280).host_addr == 0x100
    env.map_exit(0x100, MAP_RELEASE)
    assert env.find(0x280) is None
    assert env.live_entries == 0


def test_max_size_high_water_spans_far_lookups(env):
    # many short entries sit between the queried address and the start of
    # a huge enclosing entry: the lookup has to walk leftward past all of
    # them (none reaches the query) and still find the huge one
    for i in range(16):
        env.map_enter(0x2_0000 + i * 0x100, 0x10, MAP_ALLOC)
    env.map_enter(0x1_0000, 0x10_0000, MAP_ALLOC)  # 1 MiB, contains them
    query = 0x2_0000 + 15 * 0x100 + 0x80          # in a gap between shorts
    hit = env.find(query)
    assert hit is not None and hit.host_addr == 0x1_0000
    # an address inside one of the short entries still prefers the entry
    # mapped first (the short one)
    assert env.find(0x2_0008).host_addr == 0x2_0000
    assert env.translate(0x1_0000 + 0x1234) == hit.dev_addr + 0x1234


def test_max_size_shrinks_when_largest_entry_unmapped(env):
    # the find() walk bound must not stay pinned at the size of an entry
    # that no longer exists: after the 1 MiB entry leaves, lookups far from
    # any small entry should inspect (almost) no candidates
    env.map_enter(0x1_0000, 0x10_0000, MAP_ALLOC)   # 1 MiB
    for i in range(64):
        env.map_enter(0x20_0000 + i * 0x1000, 0x10, MAP_ALLOC)
    assert env._max_size == 0x10_0000
    env.map_exit(0x1_0000, MAP_RELEASE)
    assert env._max_size == 0x10                    # recomputed, not stale
    # misses beyond the small entries now terminate after one candidate
    # (the walk window is max_size wide); with the stale 1 MiB bound this
    # query would have walked all 64 entries
    assert env.find(0x20_0000 + 63 * 0x1000 + 0x800) is None
    # ties: removing one of two equal-size largest entries keeps the bound
    env.map_enter(0x40_0000, 0x2000, MAP_ALLOC)
    env.map_enter(0x50_0000, 0x2000, MAP_ALLOC)
    env.map_exit(0x40_0000, MAP_RELEASE)
    assert env._max_size == 0x2000
