"""Cross-cutting coverage: PTX text for every op family, printf formats,
engine counter consistency."""

import numpy as np
import pytest

from repro.cfront.interp import Machine
from repro.cfront.parser import parse_translation_unit
from repro.cuda.device import JETSON_NANO_GPU, Dim3
from repro.cuda.ptx.lower import lower_translation_unit
from repro.cuda.ptx.ptxwriter import module_to_ptx
from repro.cuda.sim.engine import FunctionalEngine
from repro.devrt import INTRINSIC_SIGS, build_intrinsics
from repro.mem import LinearMemory


def test_ptx_text_covers_all_op_families():
    src = """
    __global__ void k(float *p, double *q, int n)
    {
        __shared__ float buf[32];
        int t = threadIdx.x;
        float v = t < n ? p[t] : 0.0f;
        buf[t] = sqrtf(v);
        __syncthreads();
        while (t > 0) { t = t / 2; }
        atomicAdd(p, buf[0]);
        q[0] = (double) v;
        if (threadIdx.x == 0)
            printf("done %d\\n", n);
    }
    """
    module = lower_translation_unit(parse_translation_unit(src),
                                    INTRINSIC_SIGS, "m")
    text = module_to_ptx(module)
    for marker in ("ld.", "st.", "setp.", "selp.", "cvt.", "bar.sync",
                   "atom.", "sqrt.", "bra", "vprintf", ".shared",
                   "%tid.x", "ret;"):
        assert marker in text, f"missing {marker} in PTX text"


def test_ptx_module_header():
    src = "__device__ int flag; __global__ void k(int *p) { p[0] = flag; }"
    module = lower_translation_unit(parse_translation_unit(src),
                                    INTRINSIC_SIGS, "m")
    text = module_to_ptx(module)
    assert ".version" in text and ".target sm_53" in text
    assert ".address_size 64" in text
    assert ".global .align 8 .b8 flag[4];" in text


def test_printf_format_coverage():
    src = r'''
    int main(void)
    {
        printf("%d|%5d|%-5d|%u|%x|%X|%o|%c|%s|%%|%g\n",
               -3, 42, 42, 7, 255, 255, 8, 65, "str", 1.5);
        printf("%08.3f\n", 3.14159);
        return 0;
    }
    '''
    machine = Machine(parse_translation_unit(src))
    machine.run()
    out = machine.output()
    assert out.splitlines()[0] == "-3|   42|42   |7|ff|FF|10|A|str|%|1.5"
    assert out.splitlines()[1] == "0003.142"


def test_engine_counters_scale_with_grid():
    src = """
    __global__ void k(float *p)
    {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        p[i] = 2.0f * p[i];
    }
    """
    module = lower_translation_unit(parse_translation_unit(src),
                                    INTRINSIC_SIGS, "m")
    gmem = LinearMemory(1 << 20, base=0x2_0000_0000, name="gmem")
    addr = gmem.alloc(4 * 4096)
    engine = FunctionalEngine(JETSON_NANO_GPU, gmem, build_intrinsics(), {})
    s1 = engine.launch(module.kernels["k"], Dim3(2), Dim3(64), [np.uint64(addr)])
    i1, t1 = s1.instructions, s1.global_transactions
    s2 = engine.launch(module.kernels["k"], Dim3(8), Dim3(64), [np.uint64(addr)])
    assert s2.instructions == 4 * i1
    assert s2.global_transactions == 4 * t1


def test_stats_alu_lane_counting_respects_masks():
    src = """
    __global__ void k(float *p)
    {
        int t = threadIdx.x;
        if (t < 8)
            p[t] = p[t] * 3.0f;   /* f32 mul on 8 active lanes */
    }
    """
    module = lower_translation_unit(parse_translation_unit(src),
                                    INTRINSIC_SIGS, "m")
    gmem = LinearMemory(1 << 16, base=0x2_0000_0000, name="gmem")
    addr = gmem.alloc(4 * 32)
    engine = FunctionalEngine(JETSON_NANO_GPU, gmem, build_intrinsics(), {})
    stats = engine.launch(module.kernels["k"], Dim3(1), Dim3(32),
                          [np.uint64(addr)])
    assert stats.alu_f32 == 8      # active lanes only


def test_ompi_compile_is_pure_no_side_effects_between_runs():
    from repro.ompi import OmpiCompiler
    src = r'''
    float v[64];
    int main(void)
    {
        int i;
        #pragma omp target teams distribute parallel for map(tofrom: v[0:64]) \
            num_teams(1) num_threads(64)
        for (i = 0; i < 64; i++) v[i] = v[i] + 1.0f;
        return 0;
    }
    '''
    prog = OmpiCompiler().compile(src, "pure")
    r1 = prog.run(seed_arrays={"v": np.zeros(64, dtype=np.float32)})
    r2 = prog.run(seed_arrays={"v": np.zeros(64, dtype=np.float32)})
    assert (r1.machine.global_array("v") == 1.0).all()
    assert (r2.machine.global_array("v") == 1.0).all()
    assert r1.measured_time == r2.measured_time
