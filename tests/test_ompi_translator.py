"""End-to-end tests of the OMPi translator + runtime pipeline."""

import numpy as np
import pytest

from repro.ompi import OmpiCompiler, OmpiConfig


def compile_run(src, name="prog", config=None, **run_kw):
    prog = OmpiCompiler(config).compile(src, name)
    run = prog.run(**run_kw)
    return prog, run


SAXPY = r'''
float x[512], y[512];

void saxpy_device(float a, int size)
{
    #pragma omp target map(to: a,size,x[0:size]) map(tofrom: y[0:size])
    {
        int i;
        #pragma omp parallel for
        for (i = 0; i < size; i++)
            y[i] = a * x[i] + y[i];
    }
}

int main(void)
{
    int i;
    for (i = 0; i < 512; i++) { x[i] = i; y[i] = 1.0f; }
    saxpy_device(2.5f, 512);
    return 0;
}
'''


def test_saxpy_masterworker_correct():
    _, run = compile_run(SAXPY, "saxpy")
    y = run.machine.global_array("y")
    assert np.allclose(y, 2.5 * np.arange(512) + 1)


def test_kernel_file_has_fig3b_markers():
    prog = OmpiCompiler().compile(SAXPY, "saxpy")
    text = prog.kernel_sources["saxpy_kernel0"]
    for marker in ("_mw_thrid", "cudadev_in_masterwarp", "cudadev_is_masterthr",
                   "cudadev_register_parallel", "cudadev_workerfunc",
                   "cudadev_exit_target", "cudadev_push_shmem",
                   "cudadev_pop_shmem", "__shared__ struct vars_st0",
                   "__global__ void saxpy_kernel0"):
        assert marker in text, f"missing {marker}"


def test_kernel_file_is_standalone_cuda_c():
    """The emitted kernel file must re-parse and re-compile on its own."""
    from repro.cuda.nvcc import compile_device
    prog = OmpiCompiler().compile(SAXPY, "saxpy")
    image = compile_device(prog.kernel_sources["saxpy_kernel0"], "again")
    assert "saxpy_kernel0" in image.module.kernels


def test_host_code_has_runtime_calls():
    prog = OmpiCompiler().compile(SAXPY, "saxpy")
    host = prog.host_source
    assert "ort_map" in host
    assert "ort_arg_ptr" in host
    assert 'ort_offload(__dev, "saxpy_kernel0"' in host
    assert "ort_unmap" in host
    assert "#pragma omp" not in host


COMBINED = r'''
float A[4096], B[4096], C[4096];

int main(void)
{
    int i, j, n = 64;
    for (i = 0; i < n * n; i++) { A[i] = i % 9; B[i] = i % 5; C[i] = 7.0f; }
    #pragma omp target teams distribute parallel for collapse(2) \
        map(to: A[0:n*n], B[0:n*n], n) map(from: C[0:n*n]) \
        num_teams(16) num_threads(256)
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++)
            C[i * n + j] = A[i * n + j] + B[i * n + j];
    return 0;
}
'''


def test_combined_construct_correct():
    _, run = compile_run(COMBINED, "vadd")
    C = run.machine.global_array("C")
    A = np.arange(4096) % 9
    B = np.arange(4096) % 5
    assert np.allclose(C, A + B)


def test_combined_kernel_has_two_phase_distribution():
    prog = OmpiCompiler().compile(COMBINED, "vadd")
    text = prog.kernel_sources["vadd_kernel0"]
    assert "cudadev_get_distribute_chunk" in text
    assert "cudadev_get_static_chunk" in text
    assert "__shared__ struct vars_st" not in text  # no master/worker (§4.2.2)
    assert "cudadev_target_init(0)" in text


def test_combined_grid_block_mapping():
    prog, run = compile_run(COMBINED, "vadd")
    stats = run.ort.cudadev.driver.last_kernel_stats
    # 256 threads -> (32, 8); 16 teams with inner count 64 -> gx=2, gy=8
    assert stats.block == (32, 8, 1)
    assert stats.grid[0] * stats.grid[1] * stats.grid[2] == 16


def test_from_map_does_not_copy_in():
    prog, run = compile_run(COMBINED, "vadd")
    h2d = [e for e in run.log.events if e.kind == "memcpy_h2d"]
    d2h = [e for e in run.log.events if e.kind == "memcpy_d2h"]
    # A and B copied in (n passes by value); only C copied out
    assert len(h2d) == 2
    assert len(d2h) == 1


def test_dynamic_schedule():
    src = COMBINED.replace("num_teams(16) num_threads(256)",
                           "num_teams(16) num_threads(256) schedule(dynamic, 8)")
    prog, run = compile_run(src, "vadd_dyn")
    assert "cudadev_get_dynamic_chunk" in prog.kernel_sources["vadd_dyn_kernel0"]
    C = run.machine.global_array("C")
    assert np.allclose(C, np.arange(4096) % 9 + np.arange(4096) % 5)


def test_guided_schedule():
    src = COMBINED.replace("num_teams(16) num_threads(256)",
                           "num_teams(16) num_threads(256) schedule(guided)")
    _, run = compile_run(src, "vadd_g")
    C = run.machine.global_array("C")
    assert np.allclose(C, np.arange(4096) % 9 + np.arange(4096) % 5)


def test_target_data_avoids_repeated_transfers():
    src = r'''
    float v[256];
    int main(void)
    {
        int i, n = 256;
        for (i = 0; i < n; i++) v[i] = 1.0f;
        #pragma omp target data map(tofrom: v[0:n])
        {
            #pragma omp target teams distribute parallel for map(tofrom: v[0:n]) \
                num_teams(2) num_threads(128)
            for (i = 0; i < n; i++) v[i] = v[i] + 1.0f;
            #pragma omp target teams distribute parallel for map(tofrom: v[0:n]) \
                num_teams(2) num_threads(128)
            for (i = 0; i < n; i++) v[i] = v[i] * 2.0f;
        }
        return 0;
    }
    '''
    prog, run = compile_run(src, "tdata")
    v = run.machine.global_array("v")
    assert np.allclose(v, 4.0)
    # the enclosing target data means one copy-in and one copy-out for the
    # array (small transfers are the implicitly-mapped scalar n)
    h2d = [e for e in run.log.events if e.kind == "memcpy_h2d" and e.bytes >= 1024]
    d2h = [e for e in run.log.events if e.kind == "memcpy_d2h" and e.bytes >= 1024]
    assert len(h2d) == 1
    assert len(d2h) == 1


def test_target_enter_exit_data_and_update():
    src = r'''
    float v[64];
    int main(void)
    {
        int i, n = 64;
        for (i = 0; i < n; i++) v[i] = 3.0f;
        #pragma omp target enter data map(to: v[0:n])
        for (i = 0; i < n; i++) v[i] = 100.0f;   /* host-side change */
        #pragma omp target update to(v[0:n])
        #pragma omp target teams distribute parallel for map(tofrom: v[0:n]) \
            num_teams(1) num_threads(64)
        for (i = 0; i < n; i++) v[i] = v[i] + 1.0f;
        #pragma omp target update from(v[0:n])
        #pragma omp target exit data map(from: v[0:n])
        return 0;
    }
    '''
    _, run = compile_run(src, "tenter")
    v = run.machine.global_array("v")
    assert np.allclose(v, 101.0)


def test_device_clause_initial_device_runs_host_fallback():
    src = SAXPY.replace("#pragma omp target map",
                        "#pragma omp target device(1) map")
    _, run = compile_run(src, "saxhost")
    y = run.machine.global_array("y")
    assert np.allclose(y, 2.5 * np.arange(512) + 1)
    # no kernels ran on the GPU
    assert run.log.count("kernel") == 0


def test_if_clause_false_runs_host_fallback():
    src = SAXPY.replace("#pragma omp target map",
                        "#pragma omp target if(size > 100000) map")
    _, run = compile_run(src, "saxif")
    assert np.allclose(run.machine.global_array("y"),
                       2.5 * np.arange(512) + 1)
    assert run.log.count("kernel") == 0


def test_device_critical_region():
    src = r'''
    int total[1];
    int main(void)
    {
        total[0] = 0;
        #pragma omp target map(tofrom: total)
        {
            #pragma omp parallel num_threads(96)
            {
                #pragma omp critical
                {
                    total[0] = total[0] + 1;
                }
            }
        }
        return 0;
    }
    '''
    prog, run = compile_run(src, "crit")
    assert "cudadev_trylock" in prog.kernel_sources["crit_kernel0"]
    assert run.machine.global_array("total")[0] == 96


def test_device_barrier_and_single():
    src = r'''
    int data[97];
    int main(void)
    {
        int i;
        for (i = 0; i < 97; i++) data[i] = 0;
        #pragma omp target map(tofrom: data)
        {
            #pragma omp parallel num_threads(96)
            {
                data[omp_get_thread_num()] = 1;
                #pragma omp barrier
                #pragma omp single
                {
                    int t, total = 0;
                    for (t = 0; t < 96; t++) total += data[t];
                    data[96] = total;
                }
            }
        }
        return 0;
    }
    '''
    _, run = compile_run(src, "barr")
    assert run.machine.global_array("data")[96] == 96


def test_device_sections():
    src = r'''
    int out[3];
    int main(void)
    {
        out[0] = 0; out[1] = 0; out[2] = 0;
        #pragma omp target map(tofrom: out)
        {
            #pragma omp parallel num_threads(96)
            {
                #pragma omp sections
                {
                    #pragma omp section
                    { out[0] = out[0] + 1; }
                    #pragma omp section
                    { out[1] = out[1] + 1; }
                    #pragma omp section
                    { out[2] = out[2] + 1; }
                }
            }
        }
        return 0;
    }
    '''
    _, run = compile_run(src, "sect")
    assert list(run.machine.global_array("out")) == [1, 1, 1]


def test_device_reduction_add():
    src = r'''
    float s[1];
    float vals[256];
    int main(void)
    {
        int i, n = 256;
        for (i = 0; i < n; i++) vals[i] = 0.5f;
        s[0] = 0.0f;
        #pragma omp target teams distribute parallel for \
            map(to: vals[0:n], n) map(tofrom: s) num_teams(2) num_threads(128)
        for (i = 0; i < n; i++)
        {
            #pragma omp atomic
            s[0] += vals[i];
        }
        return 0;
    }
    '''
    _, run = compile_run(src, "red")
    assert np.isclose(run.machine.global_array("s")[0], 128.0)


def test_host_parallel_for():
    src = r'''
    float out[100];
    int main(void)
    {
        int i, n = 100;
        #pragma omp parallel for num_threads(4)
        for (i = 0; i < n; i++)
            out[i] = 2 * i;
        return 0;
    }
    '''
    _, run = compile_run(src, "hostpar")
    assert np.allclose(run.machine.global_array("out"), 2 * np.arange(100))


def test_host_parallel_thread_ids():
    src = r'''
    int tids[4];
    int main(void)
    {
        #pragma omp parallel num_threads(4)
        {
            tids[omp_get_thread_num()] = omp_get_thread_num() + 10;
        }
        return 0;
    }
    '''
    _, run = compile_run(src, "tids")
    assert list(run.machine.global_array("tids")) == [10, 11, 12, 13]


def test_declare_target_function_embedded_in_kernel():
    src = r'''
    float x[64];
    #pragma omp declare target
    float twice(float v) { return 2.0f * v; }
    #pragma omp end declare target
    int main(void)
    {
        int i, n = 64;
        for (i = 0; i < n; i++) x[i] = i;
        #pragma omp target teams distribute parallel for map(tofrom: x[0:n], n) \
            num_teams(1) num_threads(64)
        for (i = 0; i < n; i++)
            x[i] = twice(x[i]);
        return 0;
    }
    '''
    prog, run = compile_run(src, "dclt")
    assert "__device__ float twice" in prog.kernel_sources["dclt_kernel0"]
    assert np.allclose(run.machine.global_array("x"), 2.0 * np.arange(64))


def test_scalar_tofrom_copied_back():
    src = r'''
    int flag[1];
    int main(void)
    {
        flag[0] = 0;
        #pragma omp target map(tofrom: flag)
        {
            flag[0] = 42;
        }
        return 0;
    }
    '''
    _, run = compile_run(src, "scl")
    assert run.machine.global_array("flag")[0] == 42


def test_unmapped_pointer_rejected():
    src = r'''
    void f(float *p, int n)
    {
        int i;
        #pragma omp target map(to: n)
        {
            #pragma omp parallel for
            for (i = 0; i < n; i++) p[i] = 0.0f;
        }
    }
    int main(void) { return 0; }
    '''
    from repro.ompi.outline import OutlineError
    with pytest.raises(OutlineError):
        OmpiCompiler().compile(src, "bad")


def test_ptx_mode_jits_and_caches(tmp_path):
    from repro.cuda.ptx.jit import JitCache
    config = OmpiConfig(binary_mode="ptx")
    prog = OmpiCompiler(config).compile(SAXPY, "saxptx")
    cache = JitCache(tmp_path / "cc")
    run1 = prog.run(jit_cache=cache)
    assert np.allclose(run1.machine.global_array("y"), 2.5 * np.arange(512) + 1)
    jit1 = [e for e in run1.log.events if e.kind == "jit"]
    assert len(jit1) == 1 and jit1[0].detail == "compiled"
    # second process run: disk cache hit, much cheaper
    run2 = prog.run(jit_cache=cache)
    jit2 = [e for e in run2.log.events if e.kind == "jit"]
    assert jit2[0].detail == "cache hit"
    assert jit2[0].seconds < jit1[0].seconds


def test_cubin_mode_never_jits():
    prog = OmpiCompiler(OmpiConfig(binary_mode="cubin")).compile(SAXPY, "saxcb")
    run = prog.run()
    assert run.log.count("jit") == 0


def test_lazy_device_initialization():
    src = r'''
    int main(void)
    {
        printf("no offloading here\n");
        return 0;
    }
    '''
    prog, run = compile_run(src, "noop")
    assert not run.ort.cudadev.initialized
    _, run2 = compile_run(SAXPY, "saxlazy")
    assert run2.ort.cudadev.initialized
    assert run2.ort.cudadev.attributes["WARP_SIZE"] == 32


def test_mw_kernel_launches_128_threads():
    prog, run = compile_run(SAXPY, "sax128")
    stats = run.ort.cudadev.driver.last_kernel_stats
    assert stats.block == (128, 1, 1)
    assert stats.grid == (1, 1, 1)


def test_omp_get_wtime_monotonic_virtual():
    src = r'''
    float x[512], y[512];
    double t0[1], t1[1];
    int main(void)
    {
        int i;
        for (i = 0; i < 512; i++) { x[i] = i; y[i] = 0.0f; }
        t0[0] = omp_get_wtime();
        #pragma omp target teams distribute parallel for \
            map(to: x[0:512]) map(from: y[0:512]) num_teams(4) num_threads(128)
        for (i = 0; i < 512; i++) y[i] = x[i];
        t1[0] = omp_get_wtime();
        return 0;
    }
    '''
    _, run = compile_run(src, "wtime")
    t0 = run.machine.global_array("t0")[0]
    t1 = run.machine.global_array("t1")[0]
    assert t1 > t0 > 0.0 or (t0 >= 0.0 and t1 > t0)


def test_lastprivate_on_combined_construct():
    src = r'''
    float v[96];
    int outv[1];
    int main(void)
    {
        int i, n = 96, last = -1;
        #pragma omp target teams distribute parallel for lastprivate(last) \
            map(tofrom: v[0:n]) map(to: n) num_teams(1) num_threads(96)
        for (i = 0; i < n; i++)
        {
            v[i] = 1.0f;
            last = i + 1000;
        }
        outv[0] = last;
        return 0;
    }
    '''
    _, run = compile_run(src, "lastp")
    assert run.machine.global_array("outv")[0] == 1095
    assert (run.machine.global_array("v") == 1.0).all()


def test_simd_directives_accepted():
    src = r'''
    float v[64];
    int main(void)
    {
        int i, n = 64;
        #pragma omp target map(tofrom: v[0:n], n)
        {
            #pragma omp parallel num_threads(32)
            {
                #pragma omp for simd
                for (i = 0; i < n; i++)
                    v[i] = 4.0f;
            }
        }
        return 0;
    }
    '''
    _, run = compile_run(src, "simd")
    assert (run.machine.global_array("v") == 4.0).all()


def test_host_sections_round_robin():
    src = r'''
    int who[3];
    int main(void)
    {
        #pragma omp parallel num_threads(2)
        {
            #pragma omp sections
            {
                #pragma omp section
                { who[0] = 10 + omp_get_thread_num(); }
                #pragma omp section
                { who[1] = 20 + omp_get_thread_num(); }
                #pragma omp section
                { who[2] = 30 + omp_get_thread_num(); }
            }
        }
        return 0;
    }
    '''
    _, run = compile_run(src, "hsect")
    assert list(run.machine.global_array("who")) == [10, 21, 30]


def test_defaults_without_num_teams_num_threads():
    """Without num_teams/num_threads OMPi picks defaults: 128 threads and
    enough teams to cover the iteration space."""
    src = r'''
    float v[1000];
    int main(void)
    {
        int i, n = 1000;
        #pragma omp target teams distribute parallel for \
            map(tofrom: v[0:n]) map(to: n)
        for (i = 0; i < n; i++)
            v[i] = 3.0f;
        return 0;
    }
    '''
    _, run = compile_run(src, "defaults")
    assert (run.machine.global_array("v") == 3.0).all()
    stats = run.ort.cudadev.driver.last_kernel_stats
    threads_per_block = stats.block[0] * stats.block[1] * stats.block[2]
    assert threads_per_block == 128
    total = stats.grid[0] * stats.grid[1] * stats.grid[2] * threads_per_block
    assert total >= 1000


def test_thread_limit_caps_num_threads():
    src = r'''
    float v[512];
    int main(void)
    {
        int i, n = 512;
        #pragma omp target teams distribute parallel for \
            map(tofrom: v[0:n]) map(to: n) \
            num_teams(8) num_threads(256) thread_limit(64)
        for (i = 0; i < n; i++)
            v[i] = 3.0f;
        return 0;
    }
    '''
    _, run = compile_run(src, "tlimit")
    assert (run.machine.global_array("v") == 3.0).all()
    stats = run.ort.cudadev.driver.last_kernel_stats
    assert stats.block[0] * stats.block[1] * stats.block[2] == 64
