"""Test-suite configuration.

Hypothesis deadlines are disabled globally: the suite runs interpreters
and a GPU simulator whose per-example wall time varies wildly with machine
load, and a wall-clock deadline would make correctness tests flaky.
"""

import pytest
from hypothesis import HealthCheck, settings


@pytest.fixture(autouse=True)
def _hermetic_cache_dir(tmp_path, monkeypatch):
    """Keep the persistent compile cache out of the real ~/.cache during
    tests: every test gets a throwaway REPRO_CACHE_DIR unless it sets
    its own."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
