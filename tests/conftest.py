"""Test-suite configuration.

Hypothesis deadlines are disabled globally: the suite runs interpreters
and a GPU simulator whose per-example wall time varies wildly with machine
load, and a wall-clock deadline would make correctness tests flaky.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
