"""Tests for the offload-as-a-service runtime (repro.serving): the
shared compile cache, deterministic admission and batching, session warm
state with digest-gated transfer elision, tenant quotas and eviction,
and leak-free session teardown."""

import json

import numpy as np
import pytest

from repro.ompi.cache import CompileCache, compile_cached, source_key
from repro.ompi.config import OmpiConfig
from repro.serving import (
    AdmissionQueue, OffloadServer, QuotaError, TenantQuota, percentile,
)

N = 64

VADD = f"""
float a[{N}], b[{N}], c[{N}];
int main(void) {{
  #pragma omp target teams distribute parallel for map(to: a, b) map(from: c)
  for (int i = 0; i < {N}; i++) c[i] = a[i] * 2.0f + b[i];
  return 0;
}}
"""

SCALE = f"""
float x[{N}], y[{N}];
int main(void) {{
  #pragma omp target teams distribute parallel for map(to: x) map(tofrom: y)
  for (int i = 0; i < {N}; i++) y[i] = 2.5f * x[i] + y[i];
  return 0;
}}
"""

G = 8

GEMM = f"""
float A[{G}][{G}], B[{G}][{G}], C[{G}][{G}];
int main(void) {{
  #pragma omp target teams distribute parallel for collapse(2) \\
          map(to: A, B) map(tofrom: C)
  for (int i = 0; i < {G}; i++)
    for (int j = 0; j < {G}; j++) {{
      float acc = 0.0f;
      for (int k = 0; k < {G}; k++) acc += A[i][k] * B[k][j];
      C[i][j] += acc;
    }}
  return 0;
}}
"""

NOWAIT = f"""
float u[{N}], v[{N}];
int main(void) {{
  #pragma omp target teams distribute parallel for nowait depend(out: u) \\
          map(tofrom: u)
  for (int i = 0; i < {N}; i++) u[i] = u[i] * 2.0f;
  #pragma omp target teams distribute parallel for nowait depend(out: v) \\
          map(tofrom: v)
  for (int i = 0; i < {N}; i++) v[i] = v[i] * 3.0f;
  #pragma omp taskwait
  return 0;
}}
"""


def _vec(seed, shape=N):
    return np.random.default_rng(seed).random(shape, dtype=np.float32)


def _standalone(source, name, seed_arrays, outputs, cache=None,
                config=None):
    cache = cache if cache is not None else CompileCache()
    prog = cache.get(source, name, config or OmpiConfig())
    run = prog.run(seed_arrays=seed_arrays, num_devices=1)
    return {out: np.asarray(run.machine.global_array(out)).tobytes()
            for out in outputs}


# ---------------------------------------------------------------------------
# Compile cache
# ---------------------------------------------------------------------------
def test_compile_cache_hit_and_miss():
    cache = CompileCache()
    p1 = cache.get(VADD, "vadd", OmpiConfig())
    p2 = cache.get(VADD, "vadd", OmpiConfig())
    assert p1.host_unit is p2.host_unit       # same compiled artifact
    assert cache.stats["misses"] == 1
    assert cache.stats["hits"] == 1


def test_compile_cache_keys_on_source_and_config():
    cache = CompileCache()
    cache.get(VADD, "vadd", OmpiConfig())
    cache.get(SCALE, "vadd", OmpiConfig())              # different source
    cache.get(VADD, "vadd", OmpiConfig(block_shape=(4, 4, 1)))  # codegen knob
    assert cache.stats["misses"] == 3
    assert source_key(VADD, "vadd", OmpiConfig()) != source_key(
        VADD, "vadd", OmpiConfig(block_shape=(4, 4, 1)))
    # runtime-only knobs share a compilation
    assert source_key(VADD, "vadd", OmpiConfig()) == source_key(
        VADD, "vadd", OmpiConfig(num_devices=4))


def test_compile_cache_lru_eviction():
    cache = CompileCache(max_entries=1)
    cache.get(VADD, "vadd")
    cache.get(SCALE, "scale")                 # evicts vadd
    assert cache.stats["evictions"] == 1
    cache.get(VADD, "vadd")                   # recompiles
    assert cache.stats["misses"] == 3


def test_compile_cached_uses_global_cache():
    p1 = compile_cached(VADD, "vadd_global_cache_probe")
    p2 = compile_cached(VADD, "vadd_global_cache_probe")
    assert p1.host_unit is p2.host_unit


# ---------------------------------------------------------------------------
# Admission ordering
# ---------------------------------------------------------------------------
class _Sess:
    def __init__(self, sid, device=0):
        self.sid, self.device = sid, device


class _Req:
    def __init__(self, arrival, sid, seq, program_key="p"):
        self.session = _Sess(sid)
        self.arrival = arrival
        self.session_seq = seq
        self.program_key = program_key

    @property
    def key(self):
        return (self.arrival, self.session.sid, self.session_seq)


def test_admission_tie_breaks_on_session_id():
    q = AdmissionQueue(1)
    # pushed out of session order, same arrival instant
    for sid in (2, 0, 1):
        q.push(_Req(0.0, sid, 0))
    batch = q.pop_batch(0, now=0.0, max_batch=8)
    assert [r.session.sid for r in batch] == [0, 1, 2]


def test_batching_preserves_per_session_fifo():
    q = AdmissionQueue(1)
    q.push(_Req(0.0, 0, 0, "p"))
    q.push(_Req(0.0, 1, 0, "other"))   # incompatible: bars session 1
    q.push(_Req(0.0, 1, 1, "p"))       # compatible but must stay behind
    batch = q.pop_batch(0, now=0.0, max_batch=8)
    assert [(r.session.sid, r.session_seq) for r in batch] == [(0, 0)]
    assert q.depth(0) == 2


# ---------------------------------------------------------------------------
# Serving correctness: bit-identity with standalone runs
# ---------------------------------------------------------------------------
def test_single_session_matches_standalone():
    seeds = {"a": _vec(1), "b": _vec(2)}
    ref = _standalone(VADD, "vadd", seeds, ("c",))
    with OffloadServer(num_devices=1) as server:
        sess = server.open_session()
        req = server.submit(sess, VADD, name="vadd", seed_arrays=seeds,
                            outputs=("c",))
        server.drain()
    assert req.status == "done"
    assert np.asarray(req.result["c"]).tobytes() == ref["c"]


def test_many_sessions_all_devices_bit_identical():
    """64 concurrent sessions over a 4-device registry: every session's
    result must match a standalone single-device run bitwise."""
    cache = CompileCache()
    config = OmpiConfig()
    progs = [("vadd", VADD, {"a": _vec(1), "b": _vec(2)}, ("c",)),
             ("scale", SCALE, {"x": _vec(3), "y": _vec(4)}, ("y",))]
    refs = {name: _standalone(src, name, seeds, outs, cache, config)
            for name, src, seeds, outs in progs}
    server = OffloadServer(num_devices=4, config=config, compile_cache=cache)
    sessions = [server.open_session(f"tenant{i % 8}") for i in range(64)]
    reqs = []
    for s in sessions:
        name, src, seeds, outs = progs[s.sid % len(progs)]
        reqs.append(server.submit(s, src, name=name, seed_arrays=seeds,
                                  outputs=outs, arrival=0.0))
    server.drain()
    assert sorted({s.device for s in sessions}) == [0, 1, 2, 3]
    assert all(r.status == "done" for r in reqs)
    for r in reqs:
        for out, arr in r.result.items():
            assert np.asarray(arr).tobytes() == refs[r.name][out]
    # same program + same arrival instant => multi-request batches formed
    assert any(size > 1 for size in server.stats.batches)
    server.close()


def test_interleaved_submission_order_is_irrelevant():
    """Satellite: deterministic virtual-clock ordering.  A 2-session
    interleaved gemm workload must produce bit-identical results and
    completion times no matter how the submits were interleaved."""
    def run(order):
        server = OffloadServer(num_devices=1)
        s = [server.open_session("t0"), server.open_session("t1")]
        seeds = [{"A": _vec(10, (G, G)), "B": _vec(11, (G, G)),
                  "C": np.zeros((G, G), dtype=np.float32)},
                 {"A": _vec(20, (G, G)), "B": _vec(21, (G, G)),
                  "C": np.zeros((G, G), dtype=np.float32)}]
        arrivals = {0: iter([0.0, 0.001]), 1: iter([0.0, 0.001])}
        reqs = {}
        for sid in order:
            reqs[(sid, s[sid].submitted)] = server.submit(
                s[sid], GEMM, name="gemm", seed_arrays=seeds[sid],
                outputs=("C",), arrival=next(arrivals[sid]))
        server.drain()
        out = {k: (np.asarray(r.result["C"]).tobytes(), r.done_time)
               for k, r in reqs.items()}
        server.close()
        return out

    # the same four logical requests, the two sessions' submit calls
    # interleaved two different ways (per-session order is FIFO semantics
    # and stays fixed; only the cross-session interleaving varies)
    assert run([0, 1, 0, 1]) == run([1, 0, 1, 0])


# ---------------------------------------------------------------------------
# Warm state: digest-gated transfer elision
# ---------------------------------------------------------------------------
def test_warm_resubmit_skips_htod_and_stays_correct():
    seeds = {"a": _vec(5), "b": _vec(6)}
    ref = _standalone(VADD, "vadd", seeds, ("c",))
    with OffloadServer(num_devices=1) as server:
        sess = server.open_session()
        r1 = server.submit(sess, VADD, name="vadd", seed_arrays=seeds,
                           outputs=("c",))
        server.drain()
        r2 = server.submit(sess, VADD, name="vadd", seed_arrays=seeds,
                           outputs=("c",))
        server.drain()
        assert r1.status == r2.status == "done"
        assert np.asarray(r1.result["c"]).tobytes() == ref["c"]
        assert np.asarray(r2.result["c"]).tobytes() == ref["c"]
        # round 2 borrowed the parked allocations and the unchanged
        # map(to:) inputs skipped their HtoD copies
        assert sess.warm_borrows >= 3
        assert sess.reuse_hits >= 2
        assert server.stats.reuse_hits >= 2


def test_stale_resident_state_is_refreshed():
    """Changed host bytes must defeat the digest and force a fresh HtoD
    copy — a parked buffer is a cache, never a source of truth."""
    with OffloadServer(num_devices=1) as server:
        sess = server.open_session()
        server.submit(sess, VADD, name="vadd",
                      seed_arrays={"a": _vec(7), "b": _vec(8)},
                      outputs=("c",))
        server.drain()
        seeds2 = {"a": _vec(9), "b": _vec(10)}
        req = server.submit(sess, VADD, name="vadd", seed_arrays=seeds2,
                            outputs=("c",))
        server.drain()
        assert req.status == "done"
        assert sess.warm_borrows >= 3          # allocations still reused
        assert server.stats.reuse_hits == 0    # ... but no copy was elided
        ref = _standalone(VADD, "vadd", seeds2, ("c",))
        assert np.asarray(req.result["c"]).tobytes() == ref["c"]


# ---------------------------------------------------------------------------
# Quotas, rejection, eviction
# ---------------------------------------------------------------------------
def test_session_and_pending_quotas_reject():
    quota = TenantQuota(max_sessions=1, max_pending=1)
    server = OffloadServer(num_devices=1, default_quota=quota, profile=True)
    sess = server.open_session("t")
    with pytest.raises(QuotaError):
        server.open_session("t")
    server.submit(sess, VADD, name="vadd", outputs=("c",))
    with pytest.raises(QuotaError):
        server.submit(sess, VADD, name="vadd", outputs=("c",))
    assert server.stats.rejections == 2
    rejects = [r for r in server.prof.records("serving") if r.op == "reject"]
    assert len(rejects) == 2
    server.drain()                 # pending slot released at dispatch
    server.submit(sess, VADD, name="vadd", outputs=("c",))
    server.drain()
    server.close()


def test_quota_pressure_evicts_coldest_idle_session():
    """Parking beyond the tenant's resident budget sheds the tenant's
    coldest idle session — never the one whose request is in flight."""
    quota = TenantQuota(max_resident_bytes=1024)   # ~one session's arrays
    server = OffloadServer(num_devices=1, default_quota=quota)
    cold = server.open_session("t")
    warm = server.open_session("t")
    server.submit(cold, VADD, name="vadd", outputs=("c",))
    server.drain()
    assert cold.resident_bytes > 0
    server.submit(warm, VADD, name="vadd", outputs=("c",))
    server.drain()
    assert server.stats.evictions >= 1
    assert cold.resident_bytes == 0 and not cold.resident
    assert warm.resident_bytes > 0         # the active session kept hers
    assert server.quotas.resident("t") <= 1024
    server.close()


# ---------------------------------------------------------------------------
# Teardown: sessions must not leak device memory
# ---------------------------------------------------------------------------
def test_session_create_destroy_cycles_do_not_leak():
    """Satellite: after N create/submit/destroy cycles (with nowait tasks
    in flight at close), cuMemGetInfo free bytes return to the
    post-warm-up baseline on every device."""
    server = OffloadServer(num_devices=2)

    def cycle():
        sess = server.open_session("leakcheck")
        server.submit(sess, NOWAIT, name="nowait",
                      seed_arrays={"u": _vec(30), "v": _vec(31)},
                      outputs=("u", "v"))
        server.submit(sess, VADD, name="vadd",
                      seed_arrays={"a": _vec(32), "b": _vec(33)},
                      outputs=("c",))
        # close with requests still pending: teardown must drain them,
        # free the parked state and return arena blocks deterministically
        server.close_session(sess)

    cycle()                                   # warm-up: module loads stick
    for mod in server.devices:
        mod.initialize()
    baseline = [mod.driver.cuMemGetInfo() for mod in server.devices]
    for _ in range(5):
        cycle()
    after = [mod.driver.cuMemGetInfo() for mod in server.devices]
    assert after == baseline
    server.close()


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------
def test_serving_activity_and_chrome_track(tmp_path):
    trace = tmp_path / "serving.json"
    with OffloadServer(num_devices=1, profile=str(trace)) as server:
        sess = server.open_session("obs")
        server.submit(sess, VADD, name="vadd", outputs=("c",))
        server.drain()
        ops = {r.op for r in server.prof.records("serving")}
        assert {"session_open", "enqueue", "batch", "admit",
                "request"} <= ops
    data = json.loads(trace.read_text())
    serving = [e for e in data["traceEvents"] if e.get("pid") == 4]
    spans = [e for e in serving if e.get("ph") == "X"]
    assert spans and any(e["name"].startswith("req") for e in spans)
    counters = [e for e in serving if e.get("ph") == "C"]
    assert counters                          # admission-queue depth track


def test_request_failure_cancels_only_that_sessions_successors():
    """A failing request poisons its own session's later requests (FIFO
    chain) but a neighbour session on the same device is untouched."""
    bad_src = VADD.replace("c[i] = a[i] * 2.0f + b[i]",
                           "c[i] = undeclared_fn(a[i])", 1)
    assert "undeclared_fn" in bad_src
    with OffloadServer(num_devices=1) as server:
        bad = server.open_session("t0")
        good = server.open_session("t1")
        r1 = server.submit(bad, bad_src, name="oob", outputs=("c",),
                           arrival=0.0)
        r2 = server.submit(bad, VADD, name="vadd", outputs=("c",),
                           arrival=0.0)
        r3 = server.submit(good, VADD, name="vadd", outputs=("c",),
                           arrival=0.0)
        server.drain()
        assert r1.status == "failed" and r1.error
        assert r2.status == "failed"
        assert "earlier request" in (r2.error or "")
        assert r3.status == "done"


def test_percentile_nearest_rank():
    values = [float(v) for v in range(1, 101)]
    assert percentile(values, 50) == 50.0
    assert percentile(values, 99) == 99.0
    assert percentile([], 99) == 0.0
