"""Property-based tests on worksharing invariants and more device-code
control-flow coverage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfront.parser import parse_translation_unit
from repro.cuda.device import JETSON_NANO_GPU, Dim3
from repro.cuda.ptx.lower import lower_translation_unit
from repro.cuda.sim.engine import FunctionalEngine
from repro.devrt import INTRINSIC_SIGS, build_intrinsics
from repro.mem import LinearMemory

GMEM_BASE = 0x2_0000_0000


def run_kernel(src, kernel, grid, block, arrays, scalars=()):
    unit = parse_translation_unit(src, "t.cu")
    module = lower_translation_unit(unit, INTRINSIC_SIGS, "t")
    gmem = LinearMemory(8 << 20, base=GMEM_BASE, name="gmem")
    addrs, shapes = [], []
    for arr in arrays:
        arr = np.asarray(arr)
        addr = gmem.alloc(max(arr.nbytes, 1))
        gmem.view(addr, arr.size, arr.dtype)[:] = arr.reshape(-1)
        addrs.append(addr)
        shapes.append(arr)
    engine = FunctionalEngine(JETSON_NANO_GPU, gmem, build_intrinsics(), {})
    params = [np.uint64(a) for a in addrs] + list(scalars)
    engine.launch(module.kernels[kernel], Dim3.of(grid), Dim3.of(block), params)
    return [gmem.view(a, arr.size, arr.dtype).reshape(arr.shape)
            for a, arr in zip(addrs, shapes)]


_CHUNK_SRC = """
__global__ void k(int *out, int n, int chunk)
{{
    cudadev_target_init(0);
    long lo, hi, tlo, thi, it;
    cudadev_get_distribute_chunk(0, (long) n, &lo, &hi);
    while (cudadev_get_{kind}_chunk(0, lo, hi, (long) chunk, &tlo, &thi)) {{
        for (it = tlo; it < thi; it++)
            out[it] += 1;
    }}
}}
"""


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=700),
    teams=st.integers(min_value=1, max_value=5),
    threads=st.sampled_from([32, 64, 96, 128]),
    chunk=st.sampled_from([0, 1, 3, 16]),
    kind=st.sampled_from(["static", "dynamic", "guided"]),
)
def test_property_every_iteration_exactly_once(n, teams, threads, chunk, kind):
    """The fundamental worksharing invariant: the two-phase distribution
    covers [0, n) exactly once for every geometry/schedule/chunk combo."""
    if kind in ("dynamic", "guided") and chunk == 0:
        chunk = 1
    out = np.zeros(max(n, 1), dtype=np.int32)
    result = run_kernel(_CHUNK_SRC.format(kind=kind), "k", teams, threads,
                        [out], scalars=(np.int32(n), np.int32(chunk)))
    assert (result[0][:n] == 1).all(), f"{kind} chunk={chunk}"
    assert result[0][n:].sum() == 0


_DIM_SRC = """
__global__ void k(int *out, int n0, int n1)
{
    cudadev_target_init(0);
    long lo0, hi0, tlo0, thi0, it0;
    long lo1, hi1, tlo1, thi1, it1;
    cudadev_get_distribute_chunk_dim(1, 0, (long) n0, &lo0, &hi0);
    while (cudadev_get_static_chunk_dim(1, 0, lo0, hi0, 0, &tlo0, &thi0)) {
        for (it0 = tlo0; it0 < thi0; it0++) {
            cudadev_get_distribute_chunk_dim(0, 0, (long) n1, &lo1, &hi1);
            while (cudadev_get_static_chunk_dim(0, 1, lo1, hi1, 0, &tlo1, &thi1)) {
                for (it1 = tlo1; it1 < thi1; it1++)
                    out[it0 * n1 + it1] += 1;
            }
        }
    }
}
"""


@settings(max_examples=10, deadline=None)
@given(
    n0=st.integers(min_value=1, max_value=24),
    n1=st.integers(min_value=1, max_value=40),
    gx=st.integers(min_value=1, max_value=3),
    gy=st.integers(min_value=1, max_value=3),
)
def test_property_2d_dimension_chunking_exactly_once(n0, n1, gx, gy):
    """The 2D mapping (§5) must also cover the space exactly once for any
    grid/extent combination, including non-divisible ones."""
    out = np.zeros(n0 * n1, dtype=np.int32)
    result = run_kernel(_DIM_SRC, "k", (gx, gy), (16, 4),
                        [out], scalars=(np.int32(n0), np.int32(n1)))
    assert (result[0] == 1).all()


def test_sections_construct_reusable_across_instances():
    src = """
    __global__ void k(int *out)
    {
        cudadev_target_init(0);
        int rep;
        for (rep = 0; rep < 3; rep++) {
            cudadev_sections_init(9, 2);
            int s;
            while ((s = cudadev_next_section(9)) >= 0)
                atomicAdd(&out[s], 1);
            __syncthreads();
        }
    }
    """
    out = run_kernel(src, "k", 1, 64, [np.zeros(2, dtype=np.int32)])[0]
    assert list(out) == [3, 3]


# -- extra device control-flow coverage ----------------------------------------

def test_device_do_while():
    src = """
    __global__ void k(int *out)
    {
        int i = threadIdx.x, count = 0;
        do {
            count++;
        } while (count < i);
        out[i] = count;
    }
    """
    out = run_kernel(src, "k", 1, 16, [np.zeros(16, dtype=np.int32)])[0]
    assert list(out) == [1] + list(range(1, 16))


def test_device_break_continue_in_nested_loops():
    src = """
    __global__ void k(int *out)
    {
        int t = threadIdx.x, i, j, acc = 0;
        for (i = 0; i < 10; i++) {
            if (i == t) continue;
            for (j = 0; j < 10; j++) {
                if (j > i) break;
                acc += 1;
            }
            if (i >= 5) break;
        }
        out[t] = acc;
    }
    """
    def scalar(t):
        acc = 0
        for i in range(10):
            if i == t:
                continue
            for j in range(10):
                if j > i:
                    break
                acc += 1
            if i >= 5:
                break
        return acc
    out = run_kernel(src, "k", 1, 16, [np.zeros(16, dtype=np.int32)])[0]
    assert list(out) == [scalar(t) for t in range(16)]


def test_device_ternary_with_side_effects():
    src = """
    __global__ void k(int *out)
    {
        int t = threadIdx.x;
        int x = 0;
        int v = t % 2 == 0 ? (x = 10) : (x = 20);
        out[t] = v + x;
    }
    """
    out = run_kernel(src, "k", 1, 8, [np.zeros(8, dtype=np.int32)])[0]
    assert list(out) == [20, 40] * 4


def test_device_while_with_divergent_exit():
    src = """
    __global__ void k(int *out)
    {
        int t = threadIdx.x;
        int v = t;
        while (v < 20)
            v = v * 2 + 1;
        out[t] = v;
    }
    """
    def scalar(t):
        v = t
        while v < 20:
            v = v * 2 + 1
        return v
    out = run_kernel(src, "k", 1, 32, [np.zeros(32, dtype=np.int32)])[0]
    assert list(out) == [scalar(t) for t in range(32)]


def test_device_comma_and_compound_assignment():
    src = """
    __global__ void k(int *out)
    {
        int t = threadIdx.x;
        int a = 1, b = 2;
        a += t, b *= 2;
        out[t] = a * 100 + b;
    }
    """
    out = run_kernel(src, "k", 1, 4, [np.zeros(4, dtype=np.int32)])[0]
    assert list(out) == [104, 204, 304, 404]
