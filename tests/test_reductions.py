"""Deterministic-reduction matrix: bit-identity across execution modes.

The tree-reduction pipeline (warp shuffle -> shared-memory tree ->
fixed-order cross-team combine on copy-back) promises results that are
bit-identical to the sequential loop and invariant across the compiled
fast paths, device counts and ``shard(n)`` splits.  The matrix here uses
integer-valued floats so the sequential reference itself is exact and the
bit-identity assertions are meaningful for every operator.

Also covers the satellite regressions: no float ``atomicMax``/``atomicMin``
in the atomic-merge baseline, parse-time rejection of unsupported
reduction operators, the ``atomic`` directive forms, ``collapse(n)``, and
the empty-mask early return in the engine's load/store path.
"""

import numpy as np
import pytest

from repro.ompi import OmpiCompiler, OmpiConfig


def compile_run(src, name, config=None):
    prog = OmpiCompiler(config).compile(src, name)
    return prog, prog.run()


# -- the reduction matrix ------------------------------------------------------

N = 32  # NxN iteration space: several teams, partial warps, exact doubles

REDUCTION_SRC = r'''
double red;
double A[@N@][@N@];
int main(void)
{
    int i, j;
    for (i = 0; i < @N@; i++)
        for (j = 0; j < @N@; j++)
            A[i][j] = @SEED@;
    red = @INIT@;
    #pragma omp target teams distribute parallel for collapse(2) \
        map(to: A) map(tofrom: red) reduction(@OP@: red) num_teams(4) num_threads(96)
    for (i = 0; i < @N@; i++)
        for (j = 0; j < @N@; j++)
            red = @BODY@;
    return 0;
}
'''

# flat-index seeds, mirrored exactly by seed_matrix(): default exact-integer
# doubles; '*' a bounded {1, 2, 0.5, 4} pattern so the product stays finite
SEED_DEFAULT = "(double)(((i * @N@ + j) * 31) % 257) - 128.0"
SEED_PRODUCT = ("(i * @N@ + j) % 4 == 0 ? 1.0 : "
                "((i * @N@ + j) % 4 == 1 ? 2.0 : "
                "((i * @N@ + j) % 4 == 2 ? 0.5 : 4.0))")

#: op -> (initial value literal, kernel body, sequential fold)
MATRIX = {
    "+":   ("3.0", "red + A[i][j]", lambda a, x: np.float64(a + x)),
    "-":   ("3.0", "red - A[i][j]", lambda a, x: np.float64(a - x)),
    "*":   ("1.0", "red * A[i][j]", lambda a, x: np.float64(a * x)),
    "max": ("-1e30", "A[i][j] > red ? A[i][j] : red",
            lambda a, x: a if a > x else np.float64(x)),
    "min": ("1e30", "A[i][j] < red ? A[i][j] : red",
            lambda a, x: a if a < x else np.float64(x)),
}


def seed_matrix(op: str) -> np.ndarray:
    idx = np.arange(N * N).reshape(N, N)
    if op == "*":
        # keep the product finite and exact: values in {1, 2, 0.5, 4}
        return np.choose(idx % 4, [1.0, 2.0, 0.5, 4.0]).astype(np.float64)
    return ((idx * 31) % 257).astype(np.float64) - 128.0


def sequential_ref(op: str) -> np.float64:
    init, _body, fold = MATRIX[op]
    acc = np.float64(float(init))
    for x in seed_matrix(op).ravel():
        acc = fold(acc, x)
    return acc


def matrix_source(op: str, extra_pragma: str = "") -> str:
    init, body, _fold = MATRIX[op]
    seed = SEED_PRODUCT if op == "*" else SEED_DEFAULT
    src = (REDUCTION_SRC.replace("@SEED@", seed).replace("@N@", str(N))
           .replace("@INIT@", init).replace("@OP@", op)
           .replace("@BODY@", body))
    if extra_pragma:
        src = src.replace("num_teams(4)", f"num_teams(4) {extra_pragma}")
    return src


def run_matrix_case(op: str, config=None, extra_pragma: str = "") -> float:
    name = {"+": "add", "-": "sub", "*": "mul"}.get(op, op)
    _, run = compile_run(matrix_source(op, extra_pragma), f"red_{name}",
                         config)
    return run.machine.global_array("red").item()


@pytest.mark.parametrize("op", sorted(MATRIX))
def test_tree_reduction_bit_identical_to_sequential(op):
    assert run_matrix_case(op) == sequential_ref(op), op


@pytest.mark.parametrize("kfp", ["on", "off", "verify"])
@pytest.mark.parametrize("op", ["+", "max"])
def test_kernel_fastpath_modes_bit_identical(op, kfp, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_FASTPATH", kfp)
    assert run_matrix_case(op) == sequential_ref(op)


@pytest.mark.parametrize("hfp", ["on", "off", "verify"])
def test_host_fastpath_modes_bit_identical(hfp, monkeypatch):
    monkeypatch.setenv("REPRO_HOST_FASTPATH", hfp)
    assert run_matrix_case("+") == sequential_ref("+")


@pytest.mark.parametrize("op", ["+", "*", "max", "min"])
def test_shard_on_mixed_registry_bit_identical(op, monkeypatch):
    """shard(n) across a heterogeneous nano,v100 registry: every global
    team slot is combined in the same fixed order regardless of which
    device owned its block range."""
    monkeypatch.setenv("REPRO_DEVICES", "nano,v100")
    got = run_matrix_case(op, extra_pragma="shard(0)")
    assert got == sequential_ref(op), op


def test_shard_device_counts_bit_identical(monkeypatch):
    vals = set()
    for n in (1, 2, 3):
        monkeypatch.setenv("REPRO_NUM_DEVICES", str(n))
        vals.add(run_matrix_case("+", extra_pragma="shard(0)"))
    assert vals == {sequential_ref("+")}


def test_devlost_fallback_computes_reduction():
    """A lost device reroutes the region to the sequential hostfn; the
    pending cross-team combine must be cancelled, not folded on top."""
    cfg = OmpiConfig(faults="device_unavailable@cuLaunchKernel:p=1.0",
                     recovery="retries=0,fallback=on")
    assert run_matrix_case("+", config=cfg) == sequential_ref("+")


def test_launch_failure_fallback_computes_reduction():
    cfg = OmpiConfig(faults="launch_failed@cuLaunchKernel:p=1.0,times=1000",
                     recovery="retries=0,fallback=on")
    assert run_matrix_case("+", config=cfg) == sequential_ref("+")


# -- atomic-merge baseline (reduction_mode='atomic') ---------------------------

def test_atomic_merge_baseline_correct_and_no_float_atomic_maxmin():
    """Regression: the legacy baseline emitted ``atomicMax``/``atomicMin``
    for float reductions — CUDA has no such hardware atomics.  Float
    max/min (and ``*``) must route through ``cudadev_atomic_red_*``."""
    src = r'''
    float fmx;
    double s;
    float v[512];
    int main(void)
    {
        int i;
        for (i = 0; i < 512; i++) v[i] = (float)((i * 37) % 101);
        fmx = -1e30f; s = 0.0;
        #pragma omp target teams distribute parallel for map(to: v) \
            map(tofrom: fmx, s) reduction(max: fmx) reduction(+: s) num_teams(4)
        for (i = 0; i < 512; i++)
        {
            if (v[i] > fmx) fmx = v[i];
            s = s + v[i];
        }
        return 0;
    }
    '''
    prog, run = compile_run(src, "amode", OmpiConfig(reduction_mode="atomic"))
    kernel = prog.kernel_sources["amode_kernel0"]
    assert "cudadev_atomic_red_max" in kernel
    assert "atomicMax" not in kernel
    v = ((np.arange(512) * 37) % 101).astype(np.float32)
    assert run.machine.global_array("fmx").item() == v.max()
    assert run.machine.global_array("s").item() == v.astype(np.float64).sum()


def test_atomic_merge_int_maxmin_keeps_hardware_atomics():
    src = r'''
    int mx;
    int v[128];
    int main(void)
    {
        int i;
        for (i = 0; i < 128; i++) v[i] = (i * 7) % 50;
        mx = -1;
        #pragma omp target teams distribute parallel for map(to: v) \
            map(tofrom: mx) reduction(max: mx)
        for (i = 0; i < 128; i++)
            if (v[i] > mx) mx = v[i];
        return 0;
    }
    '''
    prog, run = compile_run(src, "imax", OmpiConfig(reduction_mode="atomic"))
    assert "atomicMax" in prog.kernel_sources["imax_kernel0"]
    assert run.machine.global_array("mx").item() == 49


def test_reduction_mode_enters_compile_cache_fingerprint():
    from repro.ompi.cache import config_fingerprint
    tree = config_fingerprint(OmpiConfig(reduction_mode="tree"))
    atomic = config_fingerprint(OmpiConfig(reduction_mode="atomic"))
    assert tree != atomic


# -- parser/validator satellites -----------------------------------------------

@pytest.mark.parametrize("op", ["&&", "||"])
def test_rejected_reduction_operators_fail_at_parse_time(op):
    from repro.openmp.pragma_parser import OmpParseError, parse_omp_pragma
    with pytest.raises(OmpParseError, match="not supported by the device"):
        parse_omp_pragma(f"omp target teams distribute parallel for "
                         f"reduction({op}: s)")


@pytest.mark.parametrize("op", ["+", "-", "*", "max", "min", "&", "|", "^"])
def test_supported_reduction_operators_parse(op):
    from repro.openmp.pragma_parser import parse_omp_pragma
    d = parse_omp_pragma(f"omp target teams distribute parallel for "
                         f"reduction({op}: s)")
    assert d.clauses[0].op == op


def test_reduction_with_nowait_rejected_on_target():
    from repro.openmp.validator import OmpValidationError
    src = r'''
    double s; double v[64];
    int main(void) {
        int i;
        #pragma omp target teams distribute parallel for nowait \
            map(to: v) map(tofrom: s) reduction(+: s)
        for (i = 0; i < 64; i++) s = s + v[i];
        return 0;
    }
    '''
    with pytest.raises(OmpValidationError, match="synchronous join"):
        OmpiCompiler().compile(src, "bad")


# -- atomic directive ----------------------------------------------------------

def test_atomic_capture_hands_out_unique_tickets():
    src = r'''
    int cnt;
    int caps[256];
    int main(void)
    {
        int i;
        cnt = 0;
        #pragma omp target teams distribute parallel for \
            map(tofrom: cnt, caps) num_teams(2)
        for (i = 0; i < 256; i++)
        {
            int old;
            #pragma omp atomic capture
            old = cnt++;
            caps[i] = old;
        }
        return 0;
    }
    '''
    _, run = compile_run(src, "ticket")
    assert run.machine.global_array("cnt").item() == 256
    assert np.array_equal(np.sort(run.machine.global_array("caps")),
                          np.arange(256))


def test_atomic_update_forms():
    src = r'''
    double acc;
    int prod;
    int commuted;
    int main(void)
    {
        int i;
        acc = 0.0; prod = 1; commuted = 0;
        #pragma omp target teams distribute parallel for \
            map(tofrom: acc, prod, commuted)
        for (i = 0; i < 64; i++)
        {
            #pragma omp atomic
            acc += 0.25;
            #pragma omp atomic update
            prod = prod * 1;
            #pragma omp atomic
            commuted = 1 + commuted;
        }
        return 0;
    }
    '''
    _, run = compile_run(src, "upd")
    assert run.machine.global_array("acc").item() == 16.0
    assert run.machine.global_array("prod").item() == 1
    assert run.machine.global_array("commuted").item() == 64


def test_atomic_read_write_forms():
    src = r'''
    int w;
    int snap[64];
    int main(void)
    {
        int i;
        w = 0;
        #pragma omp target teams distribute parallel for map(tofrom: w, snap)
        for (i = 0; i < 64; i++)
        {
            int seen;
            #pragma omp atomic write
            w = 7;
            #pragma omp atomic read
            seen = w;
            snap[i] = seen;
        }
        return 0;
    }
    '''
    _, run = compile_run(src, "rw")
    assert run.machine.global_array("w").item() == 7
    assert set(run.machine.global_array("snap").tolist()) <= {0, 7}


def test_atomic_unsupported_form_is_rejected():
    from repro.ompi.xform_cuda import CudaXformError
    src = r'''
    int x;
    int main(void)
    {
        int i;
        #pragma omp target teams distribute parallel for map(tofrom: x)
        for (i = 0; i < 8; i++)
        {
            #pragma omp atomic
            x = x / 2;
        }
        return 0;
    }
    '''
    with pytest.raises(CudaXformError, match="atomic update"):
        OmpiCompiler().compile(src, "badat")


# -- collapse ------------------------------------------------------------------

def test_collapse_covers_full_iteration_space_device_and_host():
    src = r'''
    double out[24][24];
    double hout[12][12];
    int main(void)
    {
        int i, j;
        #pragma omp target teams map(tofrom: out)
        {
            #pragma omp parallel
            {
                #pragma omp for collapse(2)
                for (i = 0; i < 24; i++)
                    for (j = 0; j < 24; j++)
                        out[i][j] = i * 100 + j;
            }
        }
        #pragma omp parallel for collapse(2) num_threads(4)
        for (i = 0; i < 12; i++)
            for (j = 0; j < 12; j++)
                hout[i][j] = i * 10 + j;
        return 0;
    }
    '''
    _, run = compile_run(src, "coll")
    i, j = np.meshgrid(np.arange(24), np.arange(24), indexing="ij")
    assert np.array_equal(run.machine.global_array("out"), i * 100 + j)
    hi, hj = np.meshgrid(np.arange(12), np.arange(12), indexing="ij")
    assert np.array_equal(run.machine.global_array("hout"), hi * 10 + hj)


def test_collapse_non_constant_argument_rejected():
    from repro.ompi.xform_cuda import CudaXformError
    src = r'''
    double out[8][8];
    int main(void)
    {
        int i, j, k = 2;
        #pragma omp target teams distribute parallel for collapse(k) map(tofrom: out)
        for (i = 0; i < 8; i++)
            for (j = 0; j < 8; j++)
                out[i][j] = 1.0;
        return 0;
    }
    '''
    with pytest.raises(CudaXformError, match="collapse"):
        OmpiCompiler().compile(src, "badcoll")


# -- engine empty-mask regression ----------------------------------------------

def test_empty_mask_load_store_count_nothing():
    """Regression: a fully predicated-off load/store must not bump the
    instruction/transaction counters — and must not resolve its (garbage)
    addresses, which previously raised on divergent warps whose inactive
    lanes held lazily-zeroed index registers."""
    from repro.cuda.device import JETSON_NANO_GPU
    from repro.cuda.sim.engine import FunctionalEngine
    from repro.devrt import build_intrinsics
    from repro.mem import LinearMemory

    gmem = LinearMemory(1 << 20, base=0x2_0000_0000, name="gmem")
    engine = FunctionalEngine(JETSON_NANO_GPU, gmem, build_intrinsics(), {})
    mask = np.zeros(32, dtype=bool)
    garbage = np.full(32, 0xdead_beef_dead, dtype=np.uint64)  # unmapped
    out = engine.mem_load(None, garbage, np.dtype(np.float32), mask)
    assert np.array_equal(out, np.zeros(32, dtype=np.float32))
    engine.mem_store(None, garbage, np.dtype(np.float32),
                     np.ones(32, dtype=np.float32), mask)
    assert engine.stats.load_instructions == 0
    assert engine.stats.store_instructions == 0
    assert engine.stats.instructions == 0
    assert engine.stats.global_mem_instructions == 0
    assert engine.stats.global_transactions == 0
