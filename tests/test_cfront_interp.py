"""Tests for the host C interpreter."""

import numpy as np
import pytest

from repro.cfront.errors import InterpError
from repro.cfront.interp import Machine, Ptr
from repro.cfront.parser import parse_translation_unit


def run(src, **kw):
    machine = Machine(parse_translation_unit(src), **kw)
    code = machine.run()
    return machine, code


def test_return_code_from_main():
    _, code = run("int main(void) { return 42; }")
    assert code == 42


def test_arithmetic_and_precedence():
    m, _ = run("""
    int main(void) {
        printf("%d %d %d %d\\n", 2 + 3 * 4, (2 + 3) * 4, 7 / 2, 7 % 2);
        return 0;
    }
    """)
    assert m.output() == "14 20 3 1\n"


def test_c_truncating_division_negative():
    m, _ = run("""
    int main(void) {
        printf("%d %d %d\\n", -7 / 2, -7 % 2, 7 / -2);
        return 0;
    }
    """)
    assert m.output() == "-3 -1 -3\n"


def test_float_formats():
    m, _ = run("""
    int main(void) {
        double x = 2.5;
        printf("%.2f %e\\n", x, 0.001);
        return 0;
    }
    """)
    assert m.output() == "2.50 1.000000e-03\n"


def test_char_narrowing_store():
    m, _ = run("""
    int main(void) {
        char c = 300;
        printf("%d\\n", c);
        return 0;
    }
    """)
    assert m.output() == "44\n"


def test_pointers_and_address_of():
    m, _ = run("""
    int main(void) {
        int x = 5;
        int *p = &x;
        *p = 9;
        printf("%d\\n", x);
        return 0;
    }
    """)
    assert m.output() == "9\n"


def test_pointer_arithmetic_and_subtraction():
    m, _ = run("""
    int xs[10];
    int main(void) {
        int *p = xs;
        int *q = p + 4;
        *q = 7;
        printf("%d %d\\n", xs[4], (int) (q - p));
        return 0;
    }
    """)
    assert m.output() == "7 4\n"


def test_arrays_2d_layout():
    m, _ = run("""
    float A[3][4];
    int main(void) {
        A[1][2] = 9.0f;
        return 0;
    }
    """)
    arr = m.global_array("A")
    assert arr.shape == (3, 4)
    assert arr[1, 2] == 9.0


def test_function_calls_and_recursion():
    m, _ = run("""
    int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
    int main(void) { printf("%d\\n", fib(10)); return 0; }
    """)
    assert m.output() == "55\n"


def test_arguments_passed_by_value():
    m, _ = run("""
    void bump(int x) { x = x + 1; }
    int main(void) { int a = 1; bump(a); printf("%d\\n", a); return 0; }
    """)
    assert m.output() == "1\n"


def test_array_parameter_aliases_caller():
    m, _ = run("""
    void fill(float dst[], int n) { int i; for (i = 0; i < n; i++) dst[i] = i; }
    float data[8];
    int main(void) { fill(data, 8); return 0; }
    """)
    assert list(m.global_array("data")) == list(range(8))


def test_while_do_while_break_continue():
    m, _ = run("""
    int main(void) {
        int i = 0, total = 0;
        while (1) {
            i++;
            if (i % 2) continue;
            if (i > 8) break;
            total += i;
        }
        printf("%d\\n", total);
        return 0;
    }
    """)
    assert m.output() == "20\n"  # 2+4+6+8


def test_logical_short_circuit():
    m, _ = run("""
    int calls = 0;
    int bump(void) { calls++; return 1; }
    int main(void) {
        int a = 0 && bump();
        int b = 1 || bump();
        printf("%d %d %d\\n", a, b, calls);
        return 0;
    }
    """)
    assert m.output() == "0 1 0\n"


def test_struct_members_dim3():
    m, _ = run("""
    int main(void) {
        dim3 g = dim3(4, 2, 1);
        printf("%d %d %d\\n", g.x, g.y, g.z);
        return 0;
    }
    """)
    assert m.output() == "4 2 1\n"


def test_sizeof():
    m, _ = run("""
    int main(void) {
        float x[10];
        printf("%d %d %d %d\\n", (int) sizeof(int), (int) sizeof(double),
               (int) sizeof x, (int) sizeof(float *));
        return 0;
    }
    """)
    assert m.output() == "4 8 40 8\n"


def test_malloc_free_memset():
    m, _ = run("""
    int main(void) {
        int *p = (int *) malloc(10 * sizeof(int));
        memset(p, 0, 10 * sizeof(int));
        p[3] = 5;
        printf("%d %d\\n", p[3], p[4]);
        free(p);
        return 0;
    }
    """)
    assert m.output() == "5 0\n"


def test_string_literals_and_puts():
    m, _ = run('int main(void) { puts("hello"); printf("%s!", "bye"); return 0; }')
    assert m.output() == "hello\nbye!"


def test_exit_native():
    _, code = run("int main(void) { exit(3); return 0; }")
    assert code == 3


def test_global_initializer():
    m, _ = run("int n = 6; int main(void) { printf(\"%d\", n * 7); return 0; }")
    assert m.output() == "42"


def test_static_local_not_supported_semantics_but_runs():
    # 'static' storage on locals is accepted; value lives per call frame.
    m, _ = run("int main(void) { static int x = 1; return x; }")


def test_untranslated_omp_pragma_raises():
    with pytest.raises(InterpError):
        run("""
        int main(void) {
            #pragma omp parallel
            { }
            return 0;
        }
        """)


def test_missing_main_raises():
    machine = Machine(parse_translation_unit("int f(void) { return 1; }"))
    with pytest.raises(InterpError):
        machine.run()


def test_call_by_name_from_python():
    m = Machine(parse_translation_unit("int twice(int x) { return 2 * x; }"))
    assert m.call("twice", 21) == 42


def test_float_cast_rounds_to_f32():
    m, _ = run("""
    int main(void) {
        double d = 0.1;
        float f = (float) d;
        printf("%.10f\\n", (double) f);
        return 0;
    }
    """)
    assert m.output().strip() == f"{np.float32(0.1):.10f}"


def test_ternary_and_comma():
    m, _ = run("""
    int main(void) {
        int a, b;
        a = 1, b = 2;
        printf("%d\\n", a > b ? a : b);
        return 0;
    }
    """)
    assert m.output() == "2\n"


def test_rand_is_deterministic():
    m1, _ = run("int main(void){ srand(7); printf(\"%d %d\", rand(), rand()); return 0; }")
    m2, _ = run("int main(void){ srand(7); printf(\"%d %d\", rand(), rand()); return 0; }")
    assert m1.output() == m2.output()


def test_out_of_bounds_access_detected():
    with pytest.raises(Exception):
        run("""
        int main(void) {
            int *p = (int *) 1;
            return *p;
        }
        """)


def test_stack_frames_freed():
    m, _ = run("""
    void work(void) { float scratch[256]; scratch[0] = 1.0f; }
    int main(void) { int i; for (i = 0; i < 100; i++) work(); return 0; }
    """)
    # all frame allocations released; only globals/strings remain
    assert m.heap.bytes_in_use < 4096
