"""Tests for PTX/cubin images and the JIT + disk cache (paper §3.3)."""

import pytest

from repro.cuda.device import JETSON_NANO_GPU, JETSON_TX2_GPU
from repro.cuda.errors import CudaError
from repro.cuda.nvcc import NvccError, compile_device, kernel_names
from repro.cuda.ptx.images import (
    CubinImage, PtxImage, assemble_cubin, identify_image,
)
from repro.cuda.ptx.jit import JitCache, jit_compile

SRC = """
__global__ void k1(float *p) { p[threadIdx.x] = 1.0f; }
__global__ void k2(float *p, int n) {
    int i = threadIdx.x;
    if (i < n) p[i] = 2.0f;
}
"""


def test_kernel_names():
    assert kernel_names(SRC) == ["k1", "k2"]


def test_compile_modes_produce_distinct_image_types():
    ptx = compile_device(SRC, "m", mode="ptx")
    cubin = compile_device(SRC, "m", mode="cubin")
    assert isinstance(ptx, PtxImage)
    assert isinstance(cubin, CubinImage)
    assert cubin.arch == "sm_53"
    assert set(cubin.resources) == {"k1", "k2"}


def test_bad_mode_rejected():
    with pytest.raises(NvccError):
        compile_device(SRC, "m", mode="sass")


def test_no_kernels_rejected():
    with pytest.raises(NvccError):
        compile_device("int x;", "m")


def test_ptx_image_bytes_roundtrip():
    ptx = compile_device(SRC, "m", mode="ptx")
    again = PtxImage.from_bytes(ptx.to_bytes())
    assert again.text == ptx.text
    assert set(again.module.kernels) == {"k1", "k2"}
    assert again.content_hash() == ptx.content_hash()


def test_cubin_image_bytes_roundtrip():
    cubin = compile_device(SRC, "m", mode="cubin")
    again = CubinImage.from_bytes(cubin.to_bytes())
    assert again.arch == cubin.arch
    assert again.resources == cubin.resources


def test_identify_image():
    ptx = compile_device(SRC, "m", mode="ptx")
    cubin = compile_device(SRC, "m", mode="cubin")
    assert identify_image(ptx.to_bytes()) == "ptx"
    assert identify_image(cubin.to_bytes()) == "cubin"
    with pytest.raises(CudaError):
        identify_image(b"ELF\x7f not really")


def test_ptx_images_are_architecture_agnostic():
    ptx = compile_device(SRC, "m", mode="ptx")
    r_nano = jit_compile(ptx, JETSON_NANO_GPU)
    r_tx2 = jit_compile(ptx, JETSON_TX2_GPU)
    assert r_nano.image.arch == "sm_53"
    assert r_tx2.image.arch == "sm_62"


def test_jit_cache_hit_is_cheaper(tmp_path):
    cache = JitCache(tmp_path)
    ptx = compile_device(SRC, "m", mode="ptx")
    cold = jit_compile(ptx, JETSON_NANO_GPU, cache)
    warm = jit_compile(ptx, JETSON_NANO_GPU, cache)
    assert not cold.cached and warm.cached
    assert warm.compile_time_s < cold.compile_time_s / 5


def test_jit_cache_keyed_by_arch(tmp_path):
    cache = JitCache(tmp_path)
    ptx = compile_device(SRC, "m", mode="ptx")
    jit_compile(ptx, JETSON_NANO_GPU, cache)
    other = jit_compile(ptx, JETSON_TX2_GPU, cache)
    assert not other.cached     # different sm -> different cache entry


def test_jit_cache_keyed_by_content(tmp_path):
    cache = JitCache(tmp_path)
    jit_compile(compile_device(SRC, "m", mode="ptx"), JETSON_NANO_GPU, cache)
    changed = SRC.replace("2.0f", "3.0f")
    result = jit_compile(compile_device(changed, "m", mode="ptx"),
                         JETSON_NANO_GPU, cache)
    assert not result.cached


def test_jit_cache_clear(tmp_path):
    cache = JitCache(tmp_path)
    ptx = compile_device(SRC, "m", mode="ptx")
    jit_compile(ptx, JETSON_NANO_GPU, cache)
    cache.clear()
    assert not jit_compile(ptx, JETSON_NANO_GPU, cache).cached


def test_jit_compile_time_scales_with_kernel_size():
    small = compile_device("__global__ void k(float *p) { p[0] = 1.0f; }",
                           "m", mode="ptx")
    big_body = "\n".join(f"p[{i}] = {i}.0f;" for i in range(200))
    big = compile_device("__global__ void k(float *p) { %s }" % big_body,
                         "m", mode="ptx")
    t_small = jit_compile(small, JETSON_NANO_GPU).compile_time_s
    t_big = jit_compile(big, JETSON_NANO_GPU).compile_time_s
    assert t_big > t_small


def test_resource_estimation_orders_by_complexity():
    simple = compile_device("__global__ void k(float *p) { p[0] = 1.0f; }", "m")
    complex_src = """
    __global__ void k(float *p, int n) {
        int i, acc = 0;
        for (i = 0; i < n; i++)
            acc += i * i + (acc >> 1);
        p[threadIdx.x] = (float) acc;
    }
    """
    complex_ = compile_device(complex_src, "m")
    assert complex_.resources["k"]["registers"] >= simple.resources["k"]["registers"]
    assert complex_.resources["k"]["static_ops"] > simple.resources["k"]["static_ops"]


def test_excessive_shared_memory_rejected_at_jit():
    src = "__global__ void k(void) { __shared__ float buf[20000]; }"
    ptx = compile_device(src, "m", mode="ptx")
    with pytest.raises(CudaError):
        jit_compile(ptx, JETSON_NANO_GPU)
