"""Tests for the ompicc command-line driver."""

import pytest

from repro.ompi.cli import main

SRC = r'''
float v[256];
int main(void)
{
    int i, n = 256;
    #pragma omp target teams distribute parallel for \
        map(tofrom: v[0:n]) map(to: n) num_teams(1) num_threads(256)
    for (i = 0; i < n; i++)
        v[i] = 3.0f;
    printf("v[7] = %.1f\n", (double) v[7]);
    return 0;
}
'''


@pytest.fixture
def src_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SRC)
    return path


def test_compile_and_run(src_file, capsys):
    code = main([str(src_file)])
    out = capsys.readouterr()
    assert code == 0
    assert "v[7] = 3.0" in out.out
    assert "compiled 1 kernel(s)" in out.err
    assert "[combined]" in out.err


def test_no_run(src_file, capsys):
    code = main([str(src_file), "--no-run"])
    assert code == 0
    assert "v[7]" not in capsys.readouterr().out


def test_keep_writes_artifacts(src_file, tmp_path, capsys):
    out_dir = tmp_path / "gen"
    code = main([str(src_file), "--keep", str(out_dir), "--no-run"])
    assert code == 0
    assert (out_dir / "prog_ompi.c").exists()
    assert (out_dir / "prog_kernel0.cu").exists()
    ptx = (out_dir / "prog_kernel0.ptx").read_text()
    assert ".visible .entry prog_kernel0" in ptx


def test_ptx_mode_with_cache(src_file, tmp_path, capsys):
    cache = tmp_path / "cc"
    assert main([str(src_file), "--ptx", "--cache", str(cache), "--time"]) == 0
    err = capsys.readouterr().err
    assert "jit" in err
    assert main([str(src_file), "--ptx", "--cache", str(cache)]) == 0
    assert any(cache.glob("*.cubin"))


def test_device_selection(src_file, capsys):
    assert main([str(src_file), "--ptx", "--device", "tx2"]) == 0
    assert "v[7] = 3.0" in capsys.readouterr().out


def test_missing_file(capsys):
    assert main(["/does/not/exist.c"]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_compile_error_reported(tmp_path, capsys):
    bad = tmp_path / "bad.c"
    bad.write_text("int main(void) { #pragma omp sparkle\n return 0; }")
    assert main([str(bad)]) in (1, 2)


def test_block_shape_override(src_file, capsys):
    assert main([str(src_file), "--block-shape", "64,4"]) == 0
    assert "v[7] = 3.0" in capsys.readouterr().out


def test_exit_code_propagates(tmp_path):
    prog = tmp_path / "exit7.c"
    prog.write_text("int main(void) { return 7; }")
    assert main([str(prog)]) == 7
