"""Differential tests for the closure-compiled kernel fast path.

Every test runs the same workload under ``fastpath='off'`` (tree-walk
reference) and ``fastpath='on'`` (compiled closures) and demands
bit-identical device memory plus identical KernelStats on every field.
"""

import dataclasses
import random

import numpy as np
import pytest

from repro.cfront.parser import parse_translation_unit
from repro.cuda.device import JETSON_NANO_GPU, Dim3
from repro.cuda.ptx.lower import lower_translation_unit
from repro.cuda.sim.engine import FunctionalEngine, LaunchError
from repro.cuda.sim.compile import (
    CompiledKernelCache, UnsupportedKernel, compile_kernel,
)
from repro.devrt import INTRINSIC_SIGS, build_intrinsics
from repro.mem import LinearMemory
from repro.ompi import OmpiCompiler, OmpiConfig

GMEM_BASE = 0x2_0000_0000


def run_both(src, kernel, grid, block, arrays, scalars=()):
    """Run a kernel under both execution modes; return per-mode
    (memory image, stats) and assert nothing diverges."""
    results = {}
    for mode in ("off", "on"):
        unit = parse_translation_unit(src, "t.cu")
        module = lower_translation_unit(unit, INTRINSIC_SIGS, "t")
        gmem = LinearMemory(16 << 20, base=GMEM_BASE, name="gmem")
        addrs = []
        for arr in arrays:
            arr = np.asarray(arr)
            addr = gmem.alloc(max(arr.nbytes, 1))
            gmem.view(addr, arr.size, arr.dtype)[:] = arr.reshape(-1)
            addrs.append(addr)
        engine = FunctionalEngine(JETSON_NANO_GPU, gmem, build_intrinsics(),
                                  {}, fastpath=mode)
        params = [np.uint64(a) for a in addrs] + list(scalars)
        stats = engine.launch(module.kernels[kernel], Dim3.of(grid),
                              Dim3.of(block), params)
        results[mode] = (gmem.buf.copy(), stats, engine)
    buf_off, st_off, _ = results["off"]
    buf_on, st_on, eng_on = results["on"]
    assert np.array_equal(buf_off, buf_on), "device memory diverged"
    diverged = [f.name for f in dataclasses.fields(st_off)
                if getattr(st_off, f.name) != getattr(st_on, f.name)]
    assert not diverged, f"stats diverged on {diverged}"
    return st_off, eng_on


def test_divergent_branches_and_loop():
    src = r"""
    __global__ void k(float *a, int *b, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) {
            float acc = 0.0f;
            for (int j = 0; j < i % 7 + 1; j++) {
                acc += a[i] * (float)j;
                if (j % 2 == 0) { acc = acc - 0.5f; }
                else { b[i] = b[i] + 1; }
            }
            a[i] = acc + sqrtf((float)i);
            b[i] = b[i] * 2 - (int)acc;
        }
    }
    """
    a = np.linspace(-3, 9, 64, dtype=np.float32)
    b = np.arange(64, dtype=np.int32) - 17
    stats, _ = run_both(src, "k", (2, 1, 1), (32, 1, 1), [a, b],
                        [np.int32(50)])
    assert stats.divergent_branches > 0
    assert stats.loop_iterations > 0


def test_break_and_continue():
    src = r"""
    __global__ void k(int *out, int n) {
        int i = threadIdx.x;
        int s = 0;
        for (int j = 0; j < n; j++) {
            if (j == i) continue;
            if (j > i + 8) break;
            s += j;
        }
        out[i] = s;
    }
    """
    out = np.zeros(32, dtype=np.int32)
    run_both(src, "k", (1, 1, 1), (32, 1, 1), [out], [np.int32(64)])


def test_barrier_in_loop_with_shared_memory():
    # block-wide reduction: shared-memory writes and __syncthreads()
    # inside a loop, with divergent participation in each round
    src = r"""
    __global__ void k(float *in, float *out) {
        __shared__ float s[64];
        int t = threadIdx.x;
        s[t] = in[blockIdx.x * 64 + t];
        __syncthreads();
        for (int stride = 32; stride > 0; stride = stride / 2) {
            if (t < stride) { s[t] = s[t] + s[t + stride]; }
            __syncthreads();
        }
        if (t == 0) { out[blockIdx.x] = s[0]; }
    }
    """
    rng = np.random.default_rng(7)
    data = rng.standard_normal(128).astype(np.float32)
    out = np.zeros(2, dtype=np.float32)
    stats, _ = run_both(src, "k", (2, 1, 1), (64, 1, 1), [data, out])
    assert stats.barriers > 0
    assert stats.shared_accesses > 0


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_randomized_kernels(seed):
    """Randomly generated arithmetic kernels with data-dependent branches
    and loops must stay bit-identical between the two engines."""
    rng = random.Random(seed)
    binops = ["+", "-", "*"]
    e1 = rng.choice(binops)
    e2 = rng.choice(binops)
    c1 = rng.randint(1, 9)
    c2 = rng.randint(2, 6)
    c3 = rng.randint(1, 5)
    src = f"""
    __global__ void k(float *a, int *b, int n) {{
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i >= n) return;
        float x = a[i];
        int acc = b[i];
        for (int j = 0; j < (i % {c2}) + {c3}; j++) {{
            x = x {e1} (float)(j + {c1});
            if (b[i] % {c2} == j % {c2}) {{
                acc = acc {e2} (j + 1);
            }} else if (j % 2 == 1) {{
                x = x * 0.5f;
            }}
        }}
        a[i] = x;
        b[i] = acc;
    }}
    """
    nrng = np.random.default_rng(seed)
    a = nrng.standard_normal(96).astype(np.float32)
    b = nrng.integers(-50, 50, 96).astype(np.int32)
    run_both(src, "k", (3, 1, 1), (32, 1, 1), [a, b], [np.int32(90)])


def test_partial_warp_and_multiple_warps():
    src = r"""
    __global__ void k(double *a) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        a[i] = a[i] * 3.0 + (double)threadIdx.x;
    }
    """
    a = np.linspace(0, 1, 80, dtype=np.float64)
    # 40 threads/block: one full warp plus a partial one per block
    run_both(src, "k", (2, 1, 1), (40, 1, 1), [a])


def test_verify_mode_accepts_equivalent_execution():
    src = r"""
    __global__ void k(float *a) {
        int i = threadIdx.x;
        a[i] = a[i] + (float)i;
    }
    """
    unit = parse_translation_unit(src, "t.cu")
    module = lower_translation_unit(unit, INTRINSIC_SIGS, "t")
    gmem = LinearMemory(1 << 20, base=GMEM_BASE, name="gmem")
    addr = gmem.alloc(32 * 4)
    gmem.view(addr, 32, np.float32)[:] = np.arange(32, dtype=np.float32)
    engine = FunctionalEngine(JETSON_NANO_GPU, gmem, build_intrinsics(), {},
                              fastpath="verify")
    engine.launch(module.kernels["k"], Dim3.of((1, 1, 1)),
                  Dim3.of((32, 1, 1)), [np.uint64(addr)])
    got = gmem.view(addr, 32, np.float32)
    assert np.array_equal(got, np.arange(32, dtype=np.float32) * 2)


def test_invalid_fastpath_rejected():
    gmem = LinearMemory(1 << 16, base=GMEM_BASE)
    with pytest.raises(ValueError):
        FunctionalEngine(JETSON_NANO_GPU, gmem, {}, {}, fastpath="sometimes")


def test_cache_compiles_once_and_hits_after():
    src = r"""
    __global__ void k(float *a) {
        int i = threadIdx.x;
        a[i] = a[i] * 2.0f;
    }
    """
    unit = parse_translation_unit(src, "t.cu")
    module = lower_translation_unit(unit, INTRINSIC_SIGS, "t")
    cache = CompiledKernelCache()
    kern = module.kernels["k"]
    first = cache.get(kern)
    second = cache.get(kern)
    assert first is not None and first is second
    assert cache.compiled == 1
    assert cache.hits == 1
    assert cache.fallbacks == 0


# -- OMPi pipeline ----------------------------------------------------------

OMPI_FOR = r'''
float A[4096], B[4096], C[4096];

int main(void)
{
    int i, j, n = 64;
    for (i = 0; i < n * n; i++) { A[i] = i % 9; B[i] = i % 5; C[i] = 7.0f; }
    #pragma omp target teams distribute parallel for collapse(2) \
        map(to: A[0:n*n], B[0:n*n], n) map(from: C[0:n*n]) \
        num_teams(16) num_threads(256) SCHEDULE
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++)
            C[i * n + j] = A[i * n + j] + B[i * n + j];
    return 0;
}
'''


def _run_ompi_modes(src, name):
    outs = {}
    for mode in ("off", "on"):
        prog = OmpiCompiler(OmpiConfig(kernel_fastpath=mode)).compile(
            src, f"{name}_{mode}")
        run = prog.run()
        stats = run.ort.cudadev.driver.last_kernel_stats
        outs[mode] = (np.asarray(run.machine.global_array("C")).copy(), stats)
    c_off, st_off = outs["off"]
    c_on, st_on = outs["on"]
    assert np.array_equal(c_off, c_on)
    diverged = [f.name for f in dataclasses.fields(st_off)
                if getattr(st_off, f.name) != getattr(st_on, f.name)]
    assert not diverged, f"stats diverged on {diverged}"
    return c_on


@pytest.mark.parametrize("sched", ["", "schedule(dynamic, 8)",
                                   "schedule(guided)"])
def test_for_schedules_match_reference(sched):
    src = OMPI_FOR.replace("SCHEDULE", sched)
    c = _run_ompi_modes(src, "sched" + str(abs(hash(sched)) % 1000))
    want = np.arange(4096) % 9 + np.arange(4096) % 5
    assert np.allclose(c, want)


def test_masterworker_parallel_inside_target():
    # '#pragma omp parallel' inside target lowers to the master/worker
    # scheme: named barriers in the worker loop plus shared push/pop
    src = r'''
    float C[512];

    int main(void)
    {
        int i;
        for (i = 0; i < 512; i++) C[i] = 1.0f;
        #pragma omp target map(tofrom: C[0:512])
        {
            int i;
            #pragma omp parallel for
            for (i = 0; i < 512; i++)
                C[i] = C[i] * 2.0f + 1.0f;
        }
        return 0;
    }
    '''
    c = _run_ompi_modes(src, "mw")
    assert np.allclose(c, np.full(512, 3.0))


def test_ompi_verify_mode_runs_clean():
    src = OMPI_FOR.replace("SCHEDULE", "")
    prog = OmpiCompiler(OmpiConfig(kernel_fastpath="verify")).compile(
        src, "vfy")
    run = prog.run()
    c = np.asarray(run.machine.global_array("C"))
    assert np.allclose(c, np.arange(4096) % 9 + np.arange(4096) % 5)
