"""Tests for the C parser."""

import pytest

from repro.cfront import astnodes as A
from repro.cfront.ctypes_ import (
    ArrayType, BasicType, FLOAT, FunctionType, INT, PointerType, StructType,
)
from repro.cfront.errors import ParseError
from repro.cfront.parser import parse_expression, parse_translation_unit


def first_func(src):
    unit = parse_translation_unit(src)
    fn = unit.functions()[0]
    return fn


# -- expressions --------------------------------------------------------------

def test_precedence_mul_over_add():
    e = parse_expression("a + b * c")
    assert isinstance(e, A.Binary) and e.op == "+"
    assert isinstance(e.right, A.Binary) and e.right.op == "*"


def test_precedence_shift_vs_relational():
    e = parse_expression("a << 2 < b")
    assert e.op == "<" and e.left.op == "<<"


def test_assignment_right_associative():
    e = parse_expression("a = b = c")
    assert isinstance(e, A.Assign) and isinstance(e.value, A.Assign)


def test_compound_assignment():
    e = parse_expression("x += 2")
    assert isinstance(e, A.Assign) and e.op == "+"


def test_ternary():
    e = parse_expression("a ? b : c ? d : e")
    assert isinstance(e, A.Cond) and isinstance(e.other, A.Cond)


def test_unary_and_postfix():
    e = parse_expression("-x++")
    assert isinstance(e, A.Unary) and e.op == "-"
    assert isinstance(e.operand, A.Unary) and e.operand.op == "p++"


def test_call_and_index_chain():
    e = parse_expression("f(a, b)[3]")
    assert isinstance(e, A.Index) and isinstance(e.base, A.Call)
    assert len(e.base.args) == 2


def test_member_access():
    e = parse_expression("p->x.y")
    assert isinstance(e, A.Member) and not e.arrow
    assert isinstance(e.base, A.Member) and e.base.arrow


def test_cast_vs_parenthesized_expr():
    e = parse_expression("(int) x")
    assert isinstance(e, A.Cast) and e.type == INT
    e2 = parse_expression("(x) + 1")
    assert isinstance(e2, A.Binary)


def test_cast_to_pointer_to_array():
    e = parse_expression("(int (*)[96]) p")
    assert isinstance(e, A.Cast)
    assert isinstance(e.type, PointerType)
    assert isinstance(e.type.pointee, ArrayType)
    assert e.type.pointee.length == 96


def test_sizeof_forms():
    e1 = parse_expression("sizeof(int)")
    assert isinstance(e1, A.SizeofType) and e1.type.sizeof() == 4
    e2 = parse_expression("sizeof x")
    assert isinstance(e2, A.SizeofExpr)
    e3 = parse_expression("sizeof(x)")  # expression, not type
    assert isinstance(e3, A.SizeofExpr)


def test_comma_expression():
    e = parse_expression("a = 1, b = 2")
    assert isinstance(e, A.Comma) and len(e.parts) == 2


def test_cuda_kernel_launch():
    e = parse_expression("kern<<<grid, 256>>>(x, n)")
    assert isinstance(e, A.CudaKernelCall)
    assert len(e.args) == 2 and e.shmem is None
    e2 = parse_expression("kern<<<g, b, 1024>>>()")
    assert e2.shmem is not None


def test_trailing_garbage_raises():
    with pytest.raises(ParseError):
        parse_expression("a + b c")


# -- declarations ----------------------------------------------------------------

def test_simple_declarations():
    fn = first_func("void f(void) { int x; float y = 1.5f; unsigned long z; }")
    decls = [s for s in fn.body.body if isinstance(s, A.DeclStmt)]
    assert decls[0].decls[0].type == INT
    assert decls[1].decls[0].type == FLOAT
    assert decls[2].decls[0].type == BasicType("long", signed=False)


def test_multi_declarator_line():
    fn = first_func("void f(void) { int a, *p, arr[10]; }")
    d = fn.body.body[0].decls
    assert d[0].type == INT
    assert isinstance(d[1].type, PointerType)
    assert isinstance(d[2].type, ArrayType) and d[2].type.length == 10


def test_pointer_to_array_declarator():
    fn = first_func("void f(void) { int (*x)[96]; }")
    t = fn.body.body[0].decls[0].type
    assert isinstance(t, PointerType)
    assert isinstance(t.pointee, ArrayType) and t.pointee.length == 96


def test_function_pointer_declarator():
    fn = first_func("void f(void) { void (*cb)(int, float); }")
    t = fn.body.body[0].decls[0].type
    assert isinstance(t, PointerType)
    assert isinstance(t.pointee, FunctionType)
    assert t.pointee.param_types == (INT, FLOAT)


def test_2d_array_dimensions_order():
    fn = first_func("void f(void) { float A[2][3]; }")
    t = fn.body.body[0].decls[0].type
    assert isinstance(t, ArrayType) and t.length == 2
    assert isinstance(t.elem, ArrayType) and t.elem.length == 3


def test_array_bound_constant_folding():
    fn = first_func("void f(void) { int a[4 * 8 + 1]; }")
    assert fn.body.body[0].decls[0].type.length == 33


def test_struct_definition_and_use():
    unit = parse_translation_unit(
        "struct pt { int x; int y; };\n"
        "void f(void) { struct pt p; p.x = 1; }"
    )
    sd = unit.decls[0]
    assert isinstance(sd, A.StructDef) and sd.name == "pt"
    assert sd.fields_[0][0] == "x"


def test_inline_shared_struct_like_fig3b():
    src = """
    __global__ void k(void) {
        __shared__ struct vars_st {
            int (*i);
            int (*x)[96];
        } vars;
    }
    """
    fn = first_func(src)
    decl = fn.body.body[0].decls[0]
    assert decl.name == "vars"
    assert "__shared__" in decl.quals
    st = decl.type
    assert isinstance(st, StructType) and st.name == "vars_st"
    assert isinstance(st.fields_[1][1], PointerType)


def test_typedef_registration():
    unit = parse_translation_unit("typedef float real; real f(real x) { return x; }")
    fn = unit.functions()[0]
    assert fn.return_type == FLOAT
    assert fn.params[0].type == FLOAT


def test_global_variables_with_init():
    unit = parse_translation_unit("int n = 42; float xs[100];")
    g0 = unit.decls[0]
    assert isinstance(g0, A.GlobalDecl) and g0.decls[0].init.value == 42


def test_function_params_named_and_decayed():
    fn = first_func("float dot(float x[], float *y, int n) { return 0.0f; }")
    assert [p.name for p in fn.params] == ["x", "y", "n"]
    assert isinstance(fn.params[0].type, PointerType)  # x[] decays


def test_function_prototype():
    unit = parse_translation_unit("void saxpy(float a, float x[], int n);")
    proto = unit.decls[0]
    assert isinstance(proto, A.FuncProto) and proto.name == "saxpy"
    assert [p.name for p in proto.params] == ["a", "x", "n"]


def test_cuda_qualifiers_on_functions():
    fn = first_func("__global__ void k(float *p) { }")
    assert "__global__" in fn.quals


# -- statements ----------------------------------------------------------------

def test_if_else_binding():
    fn = first_func("void f(int a) { if (a) if (a > 1) a = 2; else a = 3; }")
    outer = fn.body.body[0]
    assert isinstance(outer, A.If) and outer.other is None
    assert isinstance(outer.then, A.If) and outer.then.other is not None


def test_for_with_decl_init():
    fn = first_func("void f(void) { for (int i = 0; i < 10; i++) ; }")
    loop = fn.body.body[0]
    assert isinstance(loop, A.For) and isinstance(loop.init, A.DeclStmt)


def test_while_do_while():
    fn = first_func("void f(int n) { while (n) n--; do n++; while (n < 3); }")
    assert isinstance(fn.body.body[0], A.While)
    assert isinstance(fn.body.body[1], A.DoWhile)


def test_break_continue_return():
    fn = first_func("int f(void) { for (;;) { break; } return 1; }")
    loop = fn.body.body[0]
    assert loop.cond is None and loop.init is None and loop.step is None
    assert isinstance(loop.body.body[0], A.Break)
    assert isinstance(fn.body.body[1], A.Return)


# -- pragmas ----------------------------------------------------------------

def test_block_pragma_attaches_following_statement():
    src = """
    void f(float y[], int n) {
        int i;
        #pragma omp parallel for
        for (i = 0; i < n; i++) y[i] = 0.0f;
    }
    """
    fn = first_func(src)
    pragma = fn.body.body[1]
    assert isinstance(pragma, A.PragmaStmt)
    assert pragma.text == "omp parallel for"
    assert isinstance(pragma.body, A.For)


def test_standalone_pragma_has_no_body():
    src = """
    void f(void) {
        #pragma omp barrier
        int x;
    }
    """
    fn = first_func(src)
    pragma = fn.body.body[0]
    assert isinstance(pragma, A.PragmaStmt) and pragma.body is None
    assert isinstance(fn.body.body[1], A.DeclStmt)


def test_nested_target_then_parallel_for():
    src = """
    void f(float y[], int n) {
        int i;
        #pragma omp target map(tofrom: y[0:n])
        #pragma omp parallel for
        for (i = 0; i < n; i++) y[i] = 1.0f;
    }
    """
    fn = first_func(src)
    target = fn.body.body[1]
    assert isinstance(target, A.PragmaStmt) and target.text.startswith("omp target")
    inner = target.body
    assert isinstance(inner, A.PragmaStmt) and inner.text == "omp parallel for"
    assert isinstance(inner.body, A.For)


def test_declarative_pragma_at_file_scope():
    unit = parse_translation_unit(
        "#pragma omp declare target\nint counter;\n#pragma omp end declare target\n"
    )
    assert isinstance(unit.decls[0], A.PragmaDecl)
    assert isinstance(unit.decls[2], A.PragmaDecl)


def test_target_update_is_standalone():
    src = """
    void f(int x) {
        #pragma omp target update to(x)
        x = 1;
    }
    """
    fn = first_func(src)
    assert isinstance(fn.body.body[0], A.PragmaStmt)
    assert fn.body.body[0].body is None


# -- errors ----------------------------------------------------------------

def test_missing_semicolon_raises():
    with pytest.raises(ParseError):
        parse_translation_unit("void f(void) { int x }")


def test_unterminated_block_raises():
    with pytest.raises(ParseError):
        parse_translation_unit("void f(void) { int x;")


def test_conflicting_type_specifiers_raise():
    with pytest.raises(ParseError):
        parse_translation_unit("void f(void) { float int x; }")


def test_node_walk_and_replace_child():
    fn = first_func("void f(int a) { a = a + 1; }")
    idents = [n for n in fn.walk() if isinstance(n, A.Ident)]
    assert len(idents) == 2
    assign = fn.body.body[0].expr
    new = A.IntLit(7)
    assert assign.replace_child(assign.value, new)
    assert assign.value is new
