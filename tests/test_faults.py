"""Tests for the fault-injection subsystem and fault-tolerant offload:
deterministic seeded injection, bounded retry, OOM eviction, context
poisoning, device-loss host fallback, and host-fallback registration."""

import json

import numpy as np
import pytest

from repro.cuda.driver import CudaDriver
from repro.cuda.errors import CudaError, CUresult
from repro.cuda.nvcc import compile_device
from repro.faults import (
    FaultInjector, FaultLog, FaultPlan, FaultSpecError, RecoveryPolicy,
    resolve_faults, resolve_recovery,
)
from repro.hostrt.devices import HostDevice
from repro.ompi.compiler import OmpiCompiler
from repro.ompi.config import OmpiConfig

SRC = """
__global__ void scale(float *p, float a, int n)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) p[i] = a * p[i];
}
"""

OFFLOAD_SRC = r"""
#include <stdio.h>
int main(void) {
    int n = 512;
    double a[512], b[512];
    int i;
    for (i = 0; i < n; i = i + 1) { a[i] = i * 0.5; b[i] = 0.0; }
    #pragma omp target teams distribute parallel for \
            map(to: a[0:512]) map(from: b[0:512])
    for (i = 0; i < n; i = i + 1)
        b[i] = 2.0 * a[i] + 1.0;
    {
        double sum = 0.0;
        for (i = 0; i < n; i = i + 1) sum = sum + b[i];
        printf("sum=%.1f\n", sum);
    }
    return 0;
}
"""


def make_driver(**kw):
    drv = CudaDriver(**kw)
    drv.cuInit(0)
    dev = drv.cuDeviceGet(0)
    ctx = drv.cuDevicePrimaryCtxRetain(dev)
    drv.cuCtxSetCurrent(ctx)
    return drv


def loaded_kernel(drv):
    handle = drv.cuModuleLoadData(compile_device(SRC, "m", mode="cubin"))
    return drv.cuModuleGetFunction(handle, "scale")


# ---------------------------------------------------------------------------
# Fault plan / spec parsing
# ---------------------------------------------------------------------------

def test_spec_grammar_rules():
    plan = FaultPlan.parse(
        "oom@cuMemAlloc:count=3,min_bytes=4096;"
        "transfer@cuMemcpy*:p=0.25,seed=99")
    assert len(plan.rules) == 2
    oom, xfer = plan.rules
    assert oom.kind == "oom" and oom.count == 3 and oom.min_bytes == 4096
    assert oom.times == 1               # count rules default to firing once
    assert xfer.probability == 0.25 and xfer.api == "cuMemcpy*"
    assert plan.seed == 99


def test_spec_presets():
    assert len(FaultPlan.parse("transient:seed=42").rules) == 3
    assert FaultPlan.parse("transient:seed=42").seed == 42
    devlost = FaultPlan.parse("devlost")
    assert devlost.rules[0].api == "cuInit"
    oom = FaultPlan.parse("oom:count=2")
    assert oom.rules[0].count == 2
    # the probabilistic variant models mid-run loss: a sticky launch
    # fault instead of failing device discovery outright
    midrun = FaultPlan.parse("devlost:p=0.02,seed=42")
    rule = midrun.rules[0]
    assert rule.api == "cuLaunchKernel"
    assert rule.kind == "device_unavailable"
    assert rule.probability == 0.02 and rule.sticky
    assert midrun.seed == 42


def test_spec_errors_and_off():
    with pytest.raises(FaultSpecError):
        FaultPlan.parse("frobnicate@cuInit")
    with pytest.raises(FaultSpecError):
        FaultPlan.parse("oom@cuMemAlloc:count=0")
    with pytest.raises(FaultSpecError):
        FaultPlan.parse("oom@cuMemAlloc:bogus=1")
    assert FaultPlan.parse("off").rules == []
    assert resolve_faults("") is None
    assert resolve_faults(False) is None
    assert resolve_faults("none") is None


def test_resolve_faults_env(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "oom@cuMemAlloc:count=1")
    inj = resolve_faults(None)
    assert isinstance(inj, FaultInjector)
    monkeypatch.setenv("REPRO_FAULTS", "off")
    assert resolve_faults(None) is None


def test_resolve_recovery_parsing():
    policy = resolve_recovery("retries=5,backoff=1e-3,fallback=off")
    assert policy.max_retries == 5
    assert policy.backoff_s == 1e-3
    assert policy.host_fallback is False
    assert policy.oom_evict is True
    assert resolve_recovery(None) == RecoveryPolicy()
    with pytest.raises(ValueError):
        resolve_recovery("bogus=1")


# ---------------------------------------------------------------------------
# Injection mechanics on the raw driver
# ---------------------------------------------------------------------------

def test_count_rule_fires_on_exact_call_and_leaves_state_clean():
    drv = make_driver(faults=resolve_faults("oom@cuMemAlloc:count=3"))
    drv.cuMemAlloc(1024)
    drv.cuMemAlloc(1024)
    in_use = drv.gmem.bytes_in_use
    with pytest.raises(CudaError) as err:
        drv.cuMemAlloc(1024)
    assert err.value.result == CUresult.CUDA_ERROR_OUT_OF_MEMORY
    assert err.value.injected
    # injection happens before any side effect: allocator state unchanged,
    # and an immediate replay of the same call succeeds
    assert drv.gmem.bytes_in_use == in_use
    assert drv.cuMemAlloc(1024) > 0
    assert drv.faultlog.count("inject") == 1


def test_size_threshold_rule_only_hits_large_transfers():
    drv = make_driver(
        faults=resolve_faults("transfer@cuMemcpyHtoDAsync:min_bytes=65536"))
    a = drv.cuMemAlloc(1 << 20)
    drv.cuMemcpyHtoD(a, np.zeros(16, dtype=np.float32))      # small: passes
    with pytest.raises(CudaError) as err:
        drv.cuMemcpyHtoD(a, np.zeros(1 << 16, dtype=np.float32))
    assert err.value.result == CUresult.CUDA_ERROR_UNKNOWN


def test_seeded_probability_injection_is_deterministic():
    def run(seed):
        drv = make_driver(
            faults=resolve_faults(f"transfer@cuMemcpy*:p=0.3,seed={seed}"))
        a = drv.cuMemAlloc(4096)
        outcomes = []
        for _ in range(40):
            try:
                drv.cuMemcpyHtoD(a, np.zeros(16, dtype=np.float32))
                outcomes.append("ok")
            except CudaError:
                outcomes.append("fault")
        return outcomes

    assert run(7) == run(7)             # same seed: identical fault pattern
    assert run(7) != run(8)             # different seed: different pattern
    assert "fault" in run(7) and "ok" in run(7)


def test_poison_is_sticky_until_primary_ctx_reset():
    drv = make_driver(faults=resolve_faults("poison@cuMemAlloc:count=1"))
    with pytest.raises(CudaError) as err:
        drv.cuMemAlloc(64)
    assert err.value.sticky
    # every later call fails with the same sticky result...
    with pytest.raises(CudaError) as err2:
        drv.cuMemGetInfo()
    assert err2.value.sticky
    assert err2.value.result == err.value.result
    # ...except device queries and the reset itself (poison-exempt)
    assert drv.cuDeviceGetCount() == 1
    drv.cuDevicePrimaryCtxReset(0)
    assert drv.cuMemAlloc(64) > 0       # context healthy again
    assert drv.faultlog.count("poison") == 1
    assert drv.faultlog.count("reset") == 1


def test_primary_ctx_reset_releases_device_state():
    drv = make_driver()
    drv.cuMemAlloc(4096)
    loaded_kernel(drv)
    assert drv.gmem.bytes_in_use > 0
    drv.cuDevicePrimaryCtxReset(0)
    assert drv.gmem.bytes_in_use == 0
    assert not drv._modules


def test_fault_log_jsonl_export(tmp_path):
    path = tmp_path / "faults.jsonl"
    drv = make_driver(faults=resolve_faults("oom@cuMemAlloc:count=1"))
    drv.faultlog.path = str(path)
    with pytest.raises(CudaError):
        drv.cuMemAlloc(64)
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert lines and lines[0]["op"] == "inject"
    assert lines[0]["api"] == "cuMemAlloc"
    assert lines[0]["fault"] == "CUDA_ERROR_OUT_OF_MEMORY"


def test_fault_log_jsonl_sink_is_size_bounded(tmp_path):
    path = tmp_path / "faults.jsonl"
    drv = make_driver(faults=resolve_faults("transfer@cuMemcpy*:p=1.0"))
    drv.faultlog.path = str(path)
    drv.faultlog.max_bytes = 512     # tiny cap to force rotation
    addr = None
    for _ in range(40):
        try:
            if addr is None:
                addr = drv.cuMemAlloc(64)
            drv.cuMemcpyHtoD(addr, b"\0" * 64)
        except CudaError:
            pass
    assert path.exists()
    # the live file stays under one rotation's worth of the cap and the
    # overflow went to the single .1 file (old .1 contents are dropped)
    assert path.stat().st_size <= 512 + 256
    assert (tmp_path / "faults.jsonl.1").exists()
    assert drv.faultlog.dropped_lines > 0
    # every surviving line is still valid jsonl
    for line in path.read_text().splitlines():
        json.loads(line)


# ---------------------------------------------------------------------------
# Recovery through the OMPi pipeline
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def offload_prog():
    return OmpiCompiler().compile(OFFLOAD_SRC, name="faulty")


def test_transient_transfer_retried(offload_prog):
    base = offload_prog.run()
    run = offload_prog.run(faults="transfer@cuMemcpyHtoDAsync:count=1")
    assert run.stdout == base.stdout
    stats = run.ort.cudadev.fault_stats
    assert stats.get("inject") == 1 and stats.get("retry") == 1
    assert "fallback" not in stats      # recovered by replay, no fallback


def test_transient_launch_retried(offload_prog):
    base = offload_prog.run()
    run = offload_prog.run(faults="launch_failed@cuLaunchKernel:count=1")
    assert run.stdout == base.stdout
    assert run.ort.cudadev.fault_stats.get("retry") == 1
    # exactly one kernel event despite the failed attempt (injection
    # precedes scheduling, so the retry is the only recorded launch)
    kernels = [e for e in run.log.events if e.kind == "kernel"]
    assert len(kernels) == 1


def test_oom_alloc_evicts_and_retries(offload_prog):
    base = offload_prog.run()
    run = offload_prog.run(faults="oom@cuMemAlloc:count=1")
    assert run.stdout == base.stdout
    stats = run.ort.cudadev.fault_stats
    assert stats.get("inject") == 1 and stats.get("evict") == 1


def test_permanent_launch_failure_falls_back_with_resync(offload_prog):
    """Launch fails beyond the retry budget on a healthy device: the region
    runs the *_hostfn and the device copies are resynced, so results are
    numerically identical."""
    base = offload_prog.run()
    run = offload_prog.run(
        faults="launch_failed@cuLaunchKernel:p=1.0,times=1000")
    assert run.stdout == base.stdout
    stats = run.ort.cudadev.fault_stats
    assert stats.get("fallback") == 1
    assert stats.get("retry") == 3      # full default budget burned first
    assert not run.ort.cudadev.lost     # device itself is still healthy


def test_device_lost_runs_whole_program_on_host(offload_prog):
    """Acceptance: under a permanent device-loss plan every target region
    completes via host fallback with fallback events in the profile."""
    base = offload_prog.run()
    run = offload_prog.run(faults="devlost", profile=True)
    assert run.stdout == base.stdout
    assert run.ort.cudadev.lost
    stats = run.ort.cudadev.fault_stats
    assert stats.get("device_lost") == 1
    assert stats.get("fallback", 0) >= 1
    fault_records = run.profile.records("fault")
    assert any(r.op == "fallback" for r in fault_records)
    assert any(r.op == "device_lost" for r in fault_records)
    # nothing ever launched on the device
    assert not [e for e in run.log.events if e.kind == "kernel"]


def test_chaos_transient_preset_is_deterministic_and_correct(offload_prog):
    """Seeded transient chaos: same results as the clean run, and two
    chaos runs with the same seed behave identically."""
    base = offload_prog.run()
    r1 = offload_prog.run(faults="transient:p=0.2,seed=11")
    r2 = offload_prog.run(faults="transient:p=0.2,seed=11")
    assert r1.stdout == base.stdout
    assert r1.ort.cudadev.fault_stats == r2.ort.cudadev.fault_stats
    assert r1.ort.cudadev.faultlog.events == r2.ort.cudadev.faultlog.events


def test_recovery_disabled_surfaces_the_failure(offload_prog):
    with pytest.raises(Exception) as err:
        offload_prog.run(
            faults="launch_failed@cuLaunchKernel:p=1.0,times=1000",
            recovery="retries=0,fallback=off")
    assert "LAUNCH_FAILED" in str(err.value)


def test_ompiconfig_faults_field():
    prog = OmpiCompiler(OmpiConfig(faults="oom@cuMemAlloc:count=1")).compile(
        OFFLOAD_SRC, name="cfg_faults")
    run = prog.run()
    assert run.ort.cudadev.fault_stats.get("evict") == 1
    assert "sum=" in run.stdout


def test_declare_target_module_pinned_against_eviction():
    src = r"""
    #include <stdio.h>
    #pragma omp declare target
    double gain = 3.0;
    #pragma omp end declare target
    int main(void) {
        double x[64];
        int i;
        for (i = 0; i < 64; i = i + 1) x[i] = 1.0;
        #pragma omp target teams distribute parallel for map(tofrom: x[0:64])
        for (i = 0; i < 64; i = i + 1)
            x[i] = x[i] * gain;
        printf("x0=%.1f\n", x[0]);
        return 0;
    }
    """
    prog = OmpiCompiler().compile(src, name="pinned")
    base = prog.run()
    assert "x0=3.0" in base.stdout
    # OOM pressure mid-run evicts caches but must not unload the module
    # owning the declare-target global
    run = prog.run(faults="oom@cuMemAlloc:count=3")
    assert run.stdout == base.stdout


# ---------------------------------------------------------------------------
# Host-fallback registration and lookup (HostDevice)
# ---------------------------------------------------------------------------

class _FakeMachine:
    def __init__(self):
        self.calls = []

    def call(self, fn, *args):
        self.calls.append((fn, args))


def test_host_device_default_hostfn_suffix():
    m = _FakeMachine()
    host = HostDevice(m)
    host.offload("kern_a", [1, 2], (1, 1, 1), (1, 1, 1))
    assert m.calls == [("kern_a_hostfn", (1, 2))]


def test_host_device_explicit_fallback_registration():
    m = _FakeMachine()
    host = HostDevice(m)
    host.register_fallback("kern_b", "custom_host_impl")
    host.offload("kern_b", [], (1, 1, 1), (1, 1, 1))
    host.offload("kern_c", [7], (1, 1, 1), (1, 1, 1))  # unregistered: suffix
    assert m.calls == [("custom_host_impl", ()), ("kern_c_hostfn", (7,))]


def test_host_device_requires_machine():
    host = HostDevice(None)
    with pytest.raises(RuntimeError, match="no interpreter"):
        host.offload("kern", [], (1, 1, 1), (1, 1, 1))


def test_compiled_program_registers_hostfn_fallbacks(offload_prog):
    run = offload_prog.run(main=False)
    fallbacks = run.ort.host_device._fallbacks
    assert fallbacks
    assert all(v == k + "_hostfn" for k, v in fallbacks.items())
    # every registered fallback exists in the translated host program
    for fn in fallbacks.values():
        assert fn in run.machine.globals


# ---------------------------------------------------------------------------
# Multi-tenant fault isolation on the serving runtime
# ---------------------------------------------------------------------------
def test_serving_devlost_does_not_poison_other_sessions():
    """A lost device in one session's launch must not leak into a
    concurrent session bound to another device: the healthy neighbour
    completes bitwise-correct, its device records zero fault events, and
    the victim's request still finishes via host fallback."""
    import numpy as np

    from repro.serving import OffloadServer

    n = 64
    src = f"""
float a[{n}], b[{n}], c[{n}];
int main(void) {{
  #pragma omp target teams distribute parallel for map(to: a, b) map(from: c)
  for (int i = 0; i < {n}; i++) c[i] = a[i] * 2.0f + b[i];
  return 0;
}}
"""
    seeds = {
        "a": np.random.default_rng(1).random(n, dtype=np.float32),
        "b": np.random.default_rng(2).random(n, dtype=np.float32),
    }
    expect = (seeds["a"] * np.float32(2.0) + seeds["b"]).tobytes()

    server = OffloadServer(num_devices=2, faults={0: "devlost"})
    victim = server.open_session("victim", device=0)
    neighbour = server.open_session("neighbour", device=1)
    r_victim = server.submit(victim, src, name="vadd", seed_arrays=seeds,
                             outputs=("c",), arrival=0.0)
    r_neighbour = server.submit(neighbour, src, name="vadd",
                                seed_arrays=seeds, outputs=("c",),
                                arrival=0.0)
    server.drain()

    # the victim's region recovered onto the host and is still correct
    assert r_victim.status == "done"
    assert server.devices[0].lost
    assert server.devices[0].fault_stats.get("device_lost") == 1
    assert np.asarray(r_victim.result["c"]).tobytes() == expect

    # the neighbour's device never saw a fault and computed on-device
    assert r_neighbour.status == "done"
    assert not server.devices[1].lost
    assert not server.devices[1].fault_stats
    assert np.asarray(r_neighbour.result["c"]).tobytes() == expect

    # later requests keep both tenants alive: the victim reruns on the
    # host path, the neighbour stays on its healthy device
    r2v = server.submit(victim, src, name="vadd", seed_arrays=seeds,
                        outputs=("c",))
    r2n = server.submit(neighbour, src, name="vadd", seed_arrays=seeds,
                        outputs=("c",))
    server.drain()
    assert r2v.status == "done" and r2n.status == "done"
    assert np.asarray(r2v.result["c"]).tobytes() == expect
    assert np.asarray(r2n.result["c"]).tobytes() == expect
    server.close()
