"""Tests for CUDA-C -> IR lowering."""

import numpy as np
import pytest

from repro.cfront.parser import parse_translation_unit
from repro.cuda.device import JETSON_NANO_GPU, Dim3
from repro.cuda.ptx.ir import BarOp, CallOp, IfOp, LoopOp, walk_ops
from repro.cuda.ptx.lower import LowerError, lower_translation_unit
from repro.cuda.ptx.ptxwriter import module_to_ptx
from repro.cuda.sim.engine import FunctionalEngine
from repro.devrt import INTRINSIC_SIGS
from repro.mem import LinearMemory

GMEM_BASE = 0x2_0000_0000


def compile_k(src, name=None):
    unit = parse_translation_unit(src, "test.cu")
    module = lower_translation_unit(unit, INTRINSIC_SIGS, "test")
    if name:
        return module.kernels[name]
    return module


def run_k(src, kernel, grid, block, arrays, scalars=(), n_out=None):
    """Compile, allocate arrays in gmem, run, return views of the arrays."""
    module = compile_k(src)
    gmem = LinearMemory(32 << 20, base=GMEM_BASE, name="gmem")
    addrs, views = [], []
    for arr in arrays:
        arr = np.asarray(arr)
        addr = gmem.alloc(max(arr.nbytes, 1))
        gmem.view(addr, arr.size, arr.dtype)[:] = arr.reshape(-1)
        addrs.append(addr)
        views.append((addr, arr))
    from repro.devrt import build_intrinsics
    engine = FunctionalEngine(JETSON_NANO_GPU, gmem, build_intrinsics(),
                              {})
    params = [np.uint64(a) for a in addrs] + [s for s in scalars]
    stats = engine.launch(module.kernels[kernel], Dim3.of(grid), Dim3.of(block), params)
    outs = [gmem.view(addr, arr.size, arr.dtype).reshape(arr.shape)
            for addr, arr in views]
    return outs, stats, engine


def test_param_types_and_pointers():
    kernel = compile_k("""
    __global__ void k(float *p, int n, double d, long l) { }
    """, "k")
    assert [p.dtype for p in kernel.params] == ["u64", "s32", "f64", "s64"]
    assert kernel.params[0].is_pointer


def test_shared_layout_and_smem_size():
    kernel = compile_k("""
    __global__ void k(void) {
        __shared__ float a[64];
        __shared__ int b;
    }
    """, "k")
    assert kernel.shared_layout["a"][1] == 256
    assert kernel.shared_layout["b"][1] == 4
    assert kernel.smem_static >= 260


def test_structured_control_flow_ops():
    kernel = compile_k("""
    __global__ void k(int *p, int n) {
        int i;
        for (i = 0; i < n; i++) {
            if (i % 2) continue;
            if (i > 10) break;
            p[i] = i;
        }
    }
    """, "k")
    loops = [op for op in walk_ops(kernel.body) if isinstance(op, LoopOp)]
    assert len(loops) == 1
    assert getattr(loops[0], "step_ops", None)


def test_syncthreads_becomes_bar0():
    kernel = compile_k("__global__ void k(void) { __syncthreads(); }", "k")
    bars = [op for op in walk_ops(kernel.body) if isinstance(op, BarOp)]
    assert len(bars) == 1 and bars[0].count is None


def test_device_function_inlined():
    kernel = compile_k("""
    __device__ int twice(int v) { return 2 * v; }
    __global__ void k(int *p) { p[threadIdx.x] = twice(threadIdx.x); }
    """, "k")
    # no CallOp except parameter loads
    calls = [op for op in walk_ops(kernel.body)
             if isinstance(op, CallOp) and not op.name.startswith("__ld")]
    assert calls == []


def test_recursive_device_function_rejected():
    with pytest.raises(LowerError):
        compile_k("""
        __device__ int f(int n) { return n ? f(n - 1) : 0; }
        __global__ void k(int *p) { p[0] = f(3); }
        """)


def test_early_return_in_inlined_function():
    outs, _, _ = run_k("""
    __device__ float clamp01(float v) {
        if (v < 0.0f) return 0.0f;
        if (v > 1.0f) return 1.0f;
        return v;
    }
    __global__ void k(float *p, int n) {
        int i = threadIdx.x;
        if (i < n) p[i] = clamp01(p[i]);
    }
    """, "k", 1, 32, [np.linspace(-1, 2, 32, dtype=np.float32)],
        scalars=(np.int32(32),))
    expect = np.clip(np.linspace(-1, 2, 32, dtype=np.float32), 0, 1)
    assert np.allclose(outs[0], expect)


def test_sreg_access():
    outs, _, _ = run_k("""
    __global__ void k(int *p) {
        int i = threadIdx.x + blockIdx.x * blockDim.x;
        p[i] = threadIdx.x * 1000 + blockIdx.x;
    }
    """, "k", 3, 8, [np.zeros(24, dtype=np.int32)])
    expect = np.array([t * 1000 + b for b in range(3) for t in range(8)])
    assert np.array_equal(outs[0], expect)


def test_unknown_function_rejected():
    with pytest.raises(LowerError):
        compile_k("__global__ void k(void) { frobnicate(); }")


def test_pragma_in_device_code_rejected():
    with pytest.raises(LowerError):
        compile_k("""
        __global__ void k(float *p) {
            #pragma omp parallel for
            for (int i = 0; i < 8; i++) p[i] = 0.0f;
        }
        """)


def test_side_effect_in_shortcircuit_rejected():
    with pytest.raises(LowerError):
        compile_k("""
        __global__ void k(int *p) {
            int i = 0;
            if (p[0] && i++) p[1] = 1;
        }
        """)


def test_address_taken_local_demoted_to_local_memory():
    kernel = compile_k("""
    __device__ void store(long *dst, long v) { *dst = v; }
    __global__ void k(long *p) {
        long tmp = 7;
        store(&tmp, 9);
        p[threadIdx.x] = tmp;
    }
    """, "k")
    assert kernel.local_static >= 8


def test_local_array_per_thread():
    outs, _, _ = run_k("""
    __global__ void k(int *p) {
        int scratch[4];
        int t = threadIdx.x;
        scratch[0] = t;
        scratch[1] = t * 2;
        p[t] = scratch[0] + scratch[1];
    }
    """, "k", 1, 16, [np.zeros(16, dtype=np.int32)])
    assert np.array_equal(outs[0], 3 * np.arange(16))


def test_math_intrinsics():
    outs, _, _ = run_k("""
    __global__ void k(float *p) {
        int i = threadIdx.x;
        p[i] = sqrtf(p[i]) + fabsf(-1.0f);
    }
    """, "k", 1, 8, [np.arange(8, dtype=np.float32) ** 2])
    assert np.allclose(outs[0], np.arange(8) + 1)


def test_double_arithmetic():
    outs, _, _ = run_k("""
    __global__ void k(double *p) {
        int i = threadIdx.x;
        p[i] = p[i] / 3.0;
    }
    """, "k", 1, 4, [np.ones(4) * 6.0])
    assert np.allclose(outs[0], 2.0)


def test_integer_division_c_semantics():
    outs, _, _ = run_k("""
    __global__ void k(int *p) {
        int i = threadIdx.x;
        p[i] = (i - 4) / 3;
    }
    """, "k", 1, 8, [np.zeros(8, dtype=np.int32)])
    expect = [int((i - 4) / 3) for i in range(8)]  # trunc toward zero
    assert list(outs[0]) == expect


def test_ptx_text_contains_markers():
    module = compile_k("""
    __global__ void k(float *p, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) p[i] = 2.0f * p[i];
    }
    """)
    text = module_to_ptx(module)
    assert ".target sm_53" in text
    assert ".visible .entry k(" in text
    assert "ld.global.f32" in text
    assert "st.global.f32" in text
    assert "bra" in text


def test_static_op_count_positive():
    module = compile_k("__global__ void k(int *p) { p[0] = 1; }")
    assert module.kernels["k"].static_op_count() > 2
