"""Tests for the multi-device registry: ``num_devices``, ``device(k)``
routing, peer copies, and the ``shard`` clause splitting a ``target teams
distribute`` across several simulated GPUs."""

import numpy as np
import pytest

from repro.cfront.errors import InterpError
from repro.hostrt.mapping import MAP_TO
from repro.ompi.compiler import OmpiCompiler
from repro.ompi.config import OmpiConfig
from repro.openmp import OmpValidationError, parse_omp_pragma, validate_directive


def compile_run(src, name="prog", config=None, **run_kw):
    prog = OmpiCompiler(config or OmpiConfig()).compile(src, name)
    return prog, prog.run(**run_kw)


GEMM_SRC = r'''
float a[48][48], b[48][48], c[48][48];
int main(void)
{
    int i, j, k;
    for (i = 0; i < 48; i++)
        for (j = 0; j < 48; j++) {
            a[i][j] = (float)((i + j) % 7) * 0.5f;
            b[i][j] = (float)((i * 3 + j * 5) % 11) - 4.0f;
            c[i][j] = 0.0f;
        }
    #pragma omp target teams distribute parallel for num_teams(8) %SHARD% \
        map(to: a, b) map(tofrom: c)
    for (i = 0; i < 48; i++)
        for (j = 0; j < 48; j++) {
            float acc = 0.0f;
            for (k = 0; k < 48; k++)
                acc += a[i][k] * b[k][j];
            c[i][j] = acc;
        }
    return 0;
}
'''


# ---------------------------------------------------------------------------
# device registry
# ---------------------------------------------------------------------------

def test_num_devices_reflected_in_api():
    src = r'''
    int vals[3];
    int main(void)
    {
        vals[0] = omp_get_num_devices();
        vals[1] = omp_get_initial_device();
        vals[2] = omp_get_default_device();
        return 0;
    }
    '''
    _, run = compile_run(src, config=OmpiConfig(num_devices=3))
    vals = list(run.machine.global_array("vals"))
    assert vals[0] == 3
    assert vals[1] == 3          # initial device id = num_devices
    assert vals[2] == 0
    assert run.ort.num_devices == 3
    assert len(run.ort.devices) == 3
    assert len({id(m.driver) for m in run.ort.devices}) == 3


def test_env_var_sets_device_count(monkeypatch):
    monkeypatch.setenv("REPRO_NUM_DEVICES", "2")
    _, run = compile_run("int main(void) { return 0; }")
    assert run.ort.num_devices == 2


def test_devices_have_disjoint_memory_arenas():
    _, run = compile_run("int main(void) { return 0; }",
                         config=OmpiConfig(num_devices=3))
    bases = [m.driver.gmem.base for m in run.ort.devices]
    sizes = [m.driver.gmem.capacity for m in run.ort.devices]
    spans = sorted(zip(bases, sizes))
    for (lo_a, sz_a), (lo_b, _) in zip(spans, spans[1:]):
        assert lo_a + sz_a <= lo_b   # no overlap between device arenas


def test_device_clause_routes_launch_and_maps():
    src = r'''
    float x[256];
    int main(void)
    {
        int i;
        #pragma omp target teams distribute parallel for device(1) \
            map(tofrom: x)
        for (i = 0; i < 256; i++) x[i] = (float)(3 * i);
        #pragma omp target enter data map(to: x) device(2)
        return 0;
    }
    '''
    _, run = compile_run(src, config=OmpiConfig(num_devices=3, profile=True))
    assert (run.machine.global_array("x")
            == 3 * np.arange(256, dtype=np.float32)).all()
    kernels = [r for r in run.ort.prof if r.kind == "kernel"]
    assert kernels and all(r.device == 1 for r in kernels)
    # the un-exited enter data lives in device 2's environment only
    addr = run.machine.global_binding("x").addr
    assert run.ort.dataenvs[2].is_present(addr)
    assert not run.ort.dataenvs[0].is_present(addr)
    assert not run.ort.dataenvs[1].is_present(addr)


def test_invalid_device_number_raises():
    src = r'''
    float x[8];
    int main(void)
    {
        int i;
        #pragma omp target teams distribute parallel for device(7) \
            map(tofrom: x)
        for (i = 0; i < 8; i++) x[i] = 1.0f;
        return 0;
    }
    '''
    with pytest.raises(InterpError, match=r"invalid device number 7"):
        compile_run(src, config=OmpiConfig(num_devices=2))


def test_omp_set_default_device_out_of_range_launch_raises():
    src = r'''
    float x[8];
    int main(void)
    {
        int i;
        omp_set_default_device(5);
        #pragma omp target teams distribute parallel for map(tofrom: x)
        for (i = 0; i < 8; i++) x[i] = 1.0f;
        return 0;
    }
    '''
    with pytest.raises(InterpError, match=r"invalid device number 5"):
        compile_run(src)


# ---------------------------------------------------------------------------
# peer (device-to-device) transfers
# ---------------------------------------------------------------------------

def test_peer_update_moves_bytes_between_devices():
    src = "float buf[16];\nint main(void) { return 0; }"
    _, run = compile_run(src, config=OmpiConfig(num_devices=2))
    ort = run.ort
    buf = run.machine.global_array("buf")
    addr = run.machine.global_binding("buf").addr
    buf[...] = np.arange(16, dtype=np.float32)
    ort.dataenvs[0].map_enter(addr, 64, MAP_TO)   # dev 0 holds the data
    buf[...] = 0.0
    ort.dataenvs[1].map_enter(addr, 64, MAP_TO)   # dev 1 holds zeros
    ort.peer_update(addr, 64, src_dev=0, dst_dev=1)
    ort.dataenvs[1].update_from(addr, 64)         # read back dev 1's copy
    assert (run.machine.global_array("buf")
            == np.arange(16, dtype=np.float32)).all()
    d2d = [e for e in ort.log.events if e.kind == "memcpy_d2d"]
    assert d2d and d2d[0].detail == "peer"


# ---------------------------------------------------------------------------
# shard: splitting target teams distribute across devices
# ---------------------------------------------------------------------------

def test_shard_gemm_bit_identical_to_single_device():
    sharded = GEMM_SRC.replace("%SHARD%", "shard(4)")
    single = GEMM_SRC.replace("%SHARD% \\", "\\")
    _, run4 = compile_run(sharded, "gemm4", OmpiConfig(num_devices=4))
    _, run1 = compile_run(single, "gemm1", OmpiConfig(num_devices=1))
    c4 = np.array(run4.machine.global_array("c"))
    c1 = np.array(run1.machine.global_array("c"))
    assert c4.tobytes() == c1.tobytes()


def test_shard_launches_one_kernel_per_device_concurrently():
    sharded = GEMM_SRC.replace("%SHARD%", "shard(4)")
    _, run = compile_run(sharded, "gemm4",
                         OmpiConfig(num_devices=4, profile=True))
    kernels = [r for r in run.ort.prof if r.kind == "kernel"]
    assert sorted(r.device for r in kernels) == [0, 1, 2, 3]
    # each shard launches with the full global grid (indices stay global)
    assert all(tuple(r.grid) == (8, 1, 1) for r in kernels)
    # the shards overlap in simulated time: every kernel starts before the
    # earliest one finishes (they run on independent devices)
    first_end = min(r.t_end for r in kernels)
    assert all(r.t_start < first_end for r in kernels)


def test_shard_trace_has_per_device_tracks():
    from repro.prof.chrome import chrome_trace
    sharded = GEMM_SRC.replace("%SHARD%", "shard(2)")
    _, run = compile_run(sharded, "gemm2",
                         OmpiConfig(num_devices=2, profile=True))
    trace = chrome_trace(run.ort.prof)
    kernel_tids = {e["tid"] for e in trace["traceEvents"]
                   if e.get("ph") == "X" and e["pid"] == 1
                   and e.get("cat") == "kernel"}
    assert len(kernel_tids) >= 2     # one stream track per device
    names = {e["args"]["name"] for e in trace["traceEvents"]
             if e.get("ph") == "M" and e.get("name") == "thread_name"}
    assert any(n.startswith("dev1 stream") for n in names)
    assert "dev1 engine:compute" in names


def test_shard_clamps_to_available_devices():
    # asking for more shards than devices uses every healthy device
    sharded = GEMM_SRC.replace("%SHARD%", "shard(8)")
    _, run = compile_run(sharded, "gemm8",
                         OmpiConfig(num_devices=2, profile=True))
    single = GEMM_SRC.replace("%SHARD% \\", "\\")
    _, run1 = compile_run(single, "gemm1", OmpiConfig(num_devices=1))
    assert (np.array(run.machine.global_array("c")).tobytes()
            == np.array(run1.machine.global_array("c")).tobytes())
    kernels = [r for r in run.ort.prof if r.kind == "kernel"]
    assert sorted(r.device for r in kernels) == [0, 1]


def test_shard_on_single_device_registry_degenerates():
    sharded = GEMM_SRC.replace("%SHARD%", "shard(4)")
    single = GEMM_SRC.replace("%SHARD% \\", "\\")
    _, runs = compile_run(sharded, "gemms", OmpiConfig(num_devices=1))
    _, run1 = compile_run(single, "gemm1", OmpiConfig(num_devices=1))
    assert (np.array(runs.machine.global_array("c")).tobytes()
            == np.array(run1.machine.global_array("c")).tobytes())


def test_shard_preserves_enclosing_target_data():
    # a shard region inside target data must leave the enclosing per-device
    # mappings consistent with the merged host values
    src = r'''
    float x[512];
    float out;
    int main(void)
    {
        int i;
        #pragma omp target data map(tofrom: x)
        {
            #pragma omp target teams distribute parallel for num_teams(4) \
                shard(2) map(tofrom: x)
            for (i = 0; i < 512; i++) x[i] = (float)(i + 1);
            #pragma omp target teams distribute parallel for num_teams(4) \
                map(tofrom: x)
            for (i = 0; i < 512; i++) x[i] = x[i] * 2.0f;
        }
        return 0;
    }
    '''
    _, run = compile_run(src, config=OmpiConfig(num_devices=2))
    expect = (np.arange(512, dtype=np.float32) + 1) * 2
    assert (run.machine.global_array("x") == expect).all()


def test_shard_partitions_work_disjointly():
    # per-device kernels see disjoint team subranges: total instructions
    # across shards stay close to the single-device count (no duplicate
    # execution of the iteration space)
    sharded = GEMM_SRC.replace("%SHARD%", "shard(4)")
    single = GEMM_SRC.replace("%SHARD% \\", "\\")
    _, run4 = compile_run(sharded, "gemm4",
                          OmpiConfig(num_devices=4, profile=True))
    _, run1 = compile_run(single, "gemm1",
                          OmpiConfig(num_devices=1, profile=True))
    insn4 = sum(r.instructions for r in run4.ort.prof if r.kind == "kernel")
    insn1 = sum(r.instructions for r in run1.ort.prof if r.kind == "kernel")
    assert insn4 == insn1


# ---------------------------------------------------------------------------
# shard clause validation
# ---------------------------------------------------------------------------

def test_shard_requires_teams_distribute():
    d = parse_omp_pragma("omp target shard(2)")
    with pytest.raises(OmpValidationError, match="teams distribute"):
        validate_directive(d)


def test_shard_rejects_nowait_and_device():
    for clause in ("nowait", "device(1)"):
        d = parse_omp_pragma(
            f"omp target teams distribute shard(2) {clause}")
        with pytest.raises(OmpValidationError):
            validate_directive(d)


def test_shard_accepted_on_combined_construct():
    d = parse_omp_pragma(
        "omp target teams distribute parallel for shard(2)")
    validate_directive(d)   # must not raise
