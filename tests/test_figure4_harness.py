"""Tests for the Figure-4 harness and the report generator."""

import json

import numpy as np
import pytest

from repro.bench.figure4 import Panel, PanelPoint, panel, render_text
from repro.bench.report import PAPER_FIG4, render_markdown


def test_panel_smallest_sizes_end_to_end():
    p = panel("3dconv", sizes=(16, 20), launch_mode="full")
    assert p.app == "3dconv" and p.category == "stencil"
    sizes, cuda_s, ompi_s = p.series()
    assert sizes == [16, 20]
    assert all(t > 0 for t in cuda_s + ompi_s)
    assert cuda_s[1] > cuda_s[0]          # monotone in problem size
    for point in p.points:
        assert 0.7 < point.ratio < 1.6


def test_render_text_format():
    p = Panel("gemm", "kernel",
              [PanelPoint(128, 0.01, 0.011), PanelPoint(256, 0.04, 0.041)])
    text = render_text({"gemm": p})
    assert "# gemm (kernel)" in text
    assert "128" in text and "0.0110" in text
    assert "OMPi/CUDA" in text


def test_render_markdown_includes_paper_columns():
    data = {"gemm": [[128, 0.01, 0.011], [2048, 5.0, 5.05]]}
    md = render_markdown(data)
    assert "### gemm" in md
    assert "| 128 |" in md
    # paper value for gemm@128 present
    assert f"{PAPER_FIG4['gemm'][128]:.2f}" in md
    assert "| 1.010 |" in md


def test_paper_reference_values_cover_all_panels():
    assert set(PAPER_FIG4) == {"3dconv", "bicg", "atax", "mvt", "gemm",
                               "gramschmidt"}
    from repro.bench.suite import get_app
    for app_name, values in PAPER_FIG4.items():
        assert set(values) == set(get_app(app_name).sizes)


def test_render_ascii_bars():
    from repro.bench.figure4 import render_ascii
    p = Panel("bicg", "kernel",
              [PanelPoint(512, 0.01, 0.011), PanelPoint(1024, 0.04, 0.041)])
    art = render_ascii(p, width=20)
    lines = art.splitlines()
    assert lines[0].startswith("bicg (kernel)")
    assert len(lines) == 1 + 2 * 2
    # the largest value fills the full width
    assert "#" * 20 in art
    assert "0.0110" in art
