"""Closure-compiled host fast path (repro.cfront.hostcompile).

The engine lowers interpreted host C — loop nests, whole functions —
to vectorized numpy closures with the tree-walk interpreter's exact
C99 float semantics.  These tests pin the mode plumbing, the
bit-identity contract between all three modes, the verify-mode
divergence detector, the per-region fallback discipline and the
``_resync_device`` digest gate that rides along in this change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cfront import hostcompile
from repro.cfront.hostcompile import (
    HostFastpathVerifyError, resolve_host_fastpath,
)
from repro.cfront.interp import Machine
from repro.cfront.parser import parse_translation_unit
from repro.ompi.compiler import OmpiCompiler
from repro.ompi.config import OmpiConfig

HOST_SRC = r"""
#include <stdio.h>
float a[64], b[64], c[64];
int main(void) {
    int i, j;
    float s = 0.0f;
    double d = 0.0;
    for (i = 0; i < 64; i++) {
        a[i] = (i % 16) * 0.25f;
        b[i] = (i * 3 % 8) * 0.5f;
        c[i] = 0.0f;
    }
    for (i = 0; i < 8; i++) {
        for (j = 0; j < 8; j++)
            c[i * 8 + j] = a[i * 8 + j] * 2.0f + b[j];
    }
    for (i = 0; i < 64; i++) {
        s += c[i];
        d += a[i] * b[i];
    }
    printf("%f %f\n", s, d);
    return 0;
}
"""

OFFLOAD_SRC = r"""
#include <stdio.h>
float x[32], y[32];
int main(void) {
    int i;
    float s = 0.0f;
    for (i = 0; i < 32; i++) { x[i] = i * 0.125f; y[i] = 0.0f; }
    #pragma omp target teams distribute parallel for \
        map(to: x[0:32]) map(tofrom: y[0:32])
    for (i = 0; i < 32; i++)
        y[i] = x[i] * 3.0f + 1.0f;
    for (i = 0; i < 32; i++) s += y[i];
    printf("%f\n", s);
    return 0;
}
"""


def _run_host(mode: str) -> Machine:
    unit = parse_translation_unit(HOST_SRC, "host.c")
    machine = Machine(unit, host_fastpath=mode)
    machine.run()
    return machine


# ---------------------------------------------------------------------------
# Mode resolution
# ---------------------------------------------------------------------------

def test_resolve_explicit_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_HOST_FASTPATH", "off")
    assert resolve_host_fastpath("verify") == "verify"


def test_resolve_env_and_default(monkeypatch):
    monkeypatch.delenv("REPRO_HOST_FASTPATH", raising=False)
    assert resolve_host_fastpath(None) == "on"
    monkeypatch.setenv("REPRO_HOST_FASTPATH", "verify")
    assert resolve_host_fastpath(None) == "verify"


def test_resolve_rejects_unknown():
    with pytest.raises(ValueError):
        resolve_host_fastpath("sometimes")


def test_config_threads_through_run():
    prog = OmpiCompiler(OmpiConfig(host_fastpath="off")).compile(
        OFFLOAD_SRC, "hf_cfg")
    run = prog.run()
    assert run.machine.host_fastpath == "off"
    # per-run override wins over the config
    run = prog.run(host_fastpath="verify")
    assert run.machine.host_fastpath == "verify"


# ---------------------------------------------------------------------------
# Bit-identity across modes
# ---------------------------------------------------------------------------

def test_all_modes_bit_identical():
    machines = {m: _run_host(m) for m in ("on", "off", "verify")}
    ref = machines["off"]
    for mode in ("on", "verify"):
        m = machines[mode]
        assert m.output() == ref.output(), mode
        for name in ("a", "b", "c"):
            got = np.asarray(m.global_array(name))
            want = np.asarray(ref.global_array(name))
            assert got.tobytes() == want.tobytes(), (mode, name)


def test_offload_program_identical_across_modes():
    prog = OmpiCompiler().compile(OFFLOAD_SRC, "hf_modes")
    outs = {m: prog.run(host_fastpath=m) for m in ("on", "off", "verify")}
    assert outs["on"].stdout == outs["off"].stdout == outs["verify"].stdout
    assert (outs["on"].log.measured_time == outs["off"].log.measured_time
            == outs["verify"].log.measured_time)


# ---------------------------------------------------------------------------
# Stats and fallback discipline
# ---------------------------------------------------------------------------

def test_host_stats_count_compiled_loops():
    m = _run_host("on")
    assert m.host_stats["loop_fast"] > 0
    assert m.host_stats["verified_regions"] == 0
    m = _run_host("off")
    assert m.host_stats["loop_fast"] == 0
    m = _run_host("verify")
    assert m.host_stats["verified_regions"] > 0


def test_unsupported_loop_falls_back_quietly():
    src = r"""
int n;
int main(void) {
    int i;
    n = 0;
    for (i = 0; i < 100; i++) {
        if (i == 7) break;   /* break: not in the compiled subset */
        n = n + 1;
    }
    return 0;
}
"""
    unit = parse_translation_unit(src, "fb.c")
    machine = Machine(unit, host_fastpath="on")
    machine.run()
    assert int(np.asarray(machine.global_array("n")).reshape(-1)[0]) == 7
    assert machine.host_stats["loop_fast"] == 0
    assert machine.host_stats["loop_fallback"] > 0


def test_function_fastpath_counts():
    src = r"""
float out[32];
float scale(float v) { return v * 2.0f + 1.0f; }
void fill(void) {
    int i;
    for (i = 0; i < 32; i++)
        out[i] = out[i] * 0.5f;
}
int main(void) {
    int i;
    for (i = 0; i < 32; i++) out[i] = scale(i * 0.25f);
    fill();
    return 0;
}
"""
    unit = parse_translation_unit(src, "fn.c")
    on = Machine(unit, host_fastpath="on")
    on.run()
    off = Machine(unit, host_fastpath="off")
    off.run()
    assert (np.asarray(on.global_array("out")).tobytes()
            == np.asarray(off.global_array("out")).tobytes())
    assert on.host_stats["fn_fast"] + on.host_stats["loop_fast"] > 0


# ---------------------------------------------------------------------------
# Verify mode detects real divergence
# ---------------------------------------------------------------------------

def test_verify_raises_on_injected_divergence(monkeypatch):
    """Corrupt the compiled engine's binop so its results differ from the
    tree-walk reference; verify mode must refuse to let that through."""
    real = hostcompile._apply_np

    def corrupt(op, lhs, rhs):
        out = real(op, lhs, rhs)
        if op == "*" and isinstance(out, np.ndarray) and out.dtype.kind == "f":
            return out + np.asarray(1.0, dtype=out.dtype)
        return out

    monkeypatch.setattr(hostcompile, "_apply_np", corrupt)
    unit = parse_translation_unit(HOST_SRC, "host.c")
    machine = Machine(unit, host_fastpath="verify")
    with pytest.raises(HostFastpathVerifyError):
        machine.run()


def test_on_mode_trusts_the_compiled_result(monkeypatch):
    """Same corruption in plain 'on' mode is (by design) not caught —
    this is exactly the risk verify mode exists to police, and the
    contrast keeps the two tests honest about what each mode checks."""
    real = hostcompile._apply_np

    def corrupt(op, lhs, rhs):
        out = real(op, lhs, rhs)
        if op == "*" and isinstance(out, np.ndarray) and out.dtype.kind == "f":
            return out + np.asarray(1.0, dtype=out.dtype)
        return out

    monkeypatch.setattr(hostcompile, "_apply_np", corrupt)
    unit = parse_translation_unit(HOST_SRC, "host.c")
    machine = Machine(unit, host_fastpath="on")
    machine.run()  # no error: results differ from the reference
    ref = _run_host("off")
    assert machine.output() != ref.output()


# ---------------------------------------------------------------------------
# Resync digest gate (satellite: skip unchanged buffers on fallback)
# ---------------------------------------------------------------------------

def test_resync_skips_unchanged_to_buffers():
    """A permanent launch failure falls back to the *_hostfn; the resync
    pushes the written tofrom buffer but skips the read-only to-mapped
    input, whose device copy already matches the host bytes."""
    prog = OmpiCompiler().compile(OFFLOAD_SRC, "hf_resync")
    base = prog.run()
    run = prog.run(faults="launch_failed@cuLaunchKernel:p=1.0,times=1000")
    assert run.stdout == base.stdout
    stats = run.ort.cudadev.fault_stats
    assert stats.get("fallback") == 1
    assert stats.get("resync_skip", 0) >= 1


def test_resync_skip_counts_aggregate():
    prog = OmpiCompiler().compile(OFFLOAD_SRC, "hf_resync2")
    run = prog.run(faults="launch_failed@cuLaunchKernel:p=1.0,times=1000")
    assert run.ort.fault_stats.get("resync_skip", 0) >= 1
