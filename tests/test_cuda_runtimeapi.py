"""Tests for the CUDA runtime API layer (.cu host programs)."""

import numpy as np
import pytest

from repro.cfront.errors import InterpError
from repro.cuda.runtimeapi import run_cuda_program


def test_full_cu_program_round_trip():
    src = r'''
    __global__ void twice(float *p, int n)
    {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) p[i] = 2.0f * p[i];
    }
    float host[100];
    int main(void)
    {
        int i, n = 100;
        for (i = 0; i < n; i++) host[i] = i;
        float *dev;
        cudaMalloc((void **) &dev, n * sizeof(float));
        cudaMemcpy(dev, host, n * sizeof(float), cudaMemcpyHostToDevice);
        twice<<<4, 32>>>(dev, n);
        cudaDeviceSynchronize();
        cudaMemcpy(host, dev, n * sizeof(float), cudaMemcpyDeviceToHost);
        cudaFree(dev);
        return 0;
    }
    '''
    machine, driver = run_cuda_program(src)
    assert np.allclose(machine.global_array("host"), 2.0 * np.arange(100))
    assert driver.log.count("kernel") == 1


def test_dim3_launch_geometry():
    src = r'''
    __global__ void where(int *p)
    {
        int i = (blockIdx.y * gridDim.x + blockIdx.x) * (blockDim.x * blockDim.y)
              + threadIdx.y * blockDim.x + threadIdx.x;
        p[i] = blockIdx.y;
    }
    int main(void)
    {
        int *d;
        cudaMalloc((void **) &d, 2 * 3 * 64 * sizeof(int));
        dim3 grid = dim3(2, 3, 1);
        dim3 block = dim3(32, 2, 1);
        where<<<grid, block>>>(d);
        cudaFree(d);
        return 0;
    }
    '''
    machine, driver = run_cuda_program(src)
    stats = driver.last_kernel_stats
    assert stats.grid == (2, 3, 1)
    assert stats.block == (32, 2, 1)


def test_device_to_device_copy():
    src = r'''
    float out[16];
    int main(void)
    {
        int i, n = 16;
        float *a, *b;
        cudaMalloc((void **) &a, n * sizeof(float));
        cudaMalloc((void **) &b, n * sizeof(float));
        for (i = 0; i < n; i++) out[i] = 5.0f;
        cudaMemcpy(a, out, n * sizeof(float), cudaMemcpyHostToDevice);
        cudaMemcpy(b, a, n * sizeof(float), cudaMemcpyDeviceToDevice);
        for (i = 0; i < n; i++) out[i] = 0.0f;
        cudaMemcpy(out, b, n * sizeof(float), cudaMemcpyDeviceToHost);
        return 0;
    }
    '''
    machine, _ = run_cuda_program(src)
    assert (machine.global_array("out") == 5.0).all()


def test_cudamemset():
    src = r'''
    int out[8];
    int main(void)
    {
        int *d;
        cudaMalloc((void **) &d, 8 * sizeof(int));
        cudaMemset(d, 0xFF, 8 * sizeof(int));
        cudaMemcpy(out, d, 8 * sizeof(int), cudaMemcpyDeviceToHost);
        return 0;
    }
    '''
    machine, _ = run_cuda_program(src)
    assert (machine.global_array("out") == -1).all()


def test_free_of_null_is_noop():
    src = r'''
    int main(void)
    {
        float *p = 0;
        cudaFree(p);
        return 0;
    }
    '''
    machine, _ = run_cuda_program(src)


def test_launch_without_runtime_raises():
    from repro.cfront.interp import Machine
    from repro.cfront.parser import parse_translation_unit
    src = r'''
    __global__ void k(void) { }
    int main(void) { k<<<1, 32>>>(); return 0; }
    '''
    machine = Machine(parse_translation_unit(src))
    with pytest.raises(InterpError):
        machine.run()


def test_kernel_printf_reaches_host_stdout():
    src = r'''
    __global__ void hello(void)
    {
        if (threadIdx.x == 0)
            printf("hello from block %d\n", blockIdx.x);
    }
    int main(void)
    {
        hello<<<2, 32>>>();
        return 0;
    }
    '''
    machine, _ = run_cuda_program(src)
    assert machine.output() == "hello from block 0\nhello from block 1\n"
